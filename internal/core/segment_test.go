package core

import (
	"fmt"
	"sync"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// TestHotSegmentReorgLeavesColdSegments drives the incremental adaptation
// path end to end: an append-ordered relation split into many segments, a
// hot query pattern whose predicate touches only the newest segments. The
// adaptation phase must reorganize exactly the segments the workload makes
// hot — the rest keep their column-major layout — and subsequent queries on
// both regions stay correct on the mixed layout.
func TestHotSegmentReorgLeavesColdSegments(t *testing.T) {
	const attrs, rows, segCap = 8, 10_000, 500 // 20 segments
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", attrs), rows, 13)
	opts := DefaultOptions()
	opts.Window.InitialSize = 8
	opts.Window.MinSize = 4
	e := New(storage.BuildColumnMajorSeg(tb, segCap), opts)

	// The hot pattern reads the newest 10% of the data: rows (9000, 10000),
	// i.e. the last 2 of 20 segments.
	hotQ := func() *query.Query {
		return query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, 8_999))
	}
	var reorgInfo *ExecInfo
	for i := 0; i < 40 && reorgInfo == nil; i++ {
		_, info, err := e.Execute(hotQ())
		if err != nil {
			t.Fatal(err)
		}
		if info.Reorganized {
			reorgInfo = &info
		}
	}
	if reorgInfo == nil {
		t.Fatalf("hot pattern never triggered a reorganization; stats=%+v pending=%v",
			e.Stats(), e.PendingProposals())
	}
	nSegs := len(e.Relation().Segments)
	if reorgInfo.SegmentsReorganized == 0 || reorgInfo.SegmentsReorganized > nSegs/4 {
		t.Fatalf("reorganized %d of %d segments; want a small hot subset",
			reorgInfo.SegmentsReorganized, nSegs)
	}

	// The group exists in the hot (newest) segments and in no cold one.
	groupAttrs := reorgInfo.NewGroup
	if _, all := e.Relation().ExactGroup(groupAttrs); all {
		t.Fatal("cold segments were reorganized too")
	}
	withGroup := 0
	for _, seg := range e.Relation().Segments {
		if _, ok := seg.ExactGroup(groupAttrs); ok {
			withGroup++
		}
	}
	if withGroup != reorgInfo.SegmentsReorganized {
		t.Fatalf("segments holding the new group = %d, reported = %d", withGroup, reorgInfo.SegmentsReorganized)
	}
	if _, ok := e.Relation().Tail().ExactGroup(groupAttrs); !ok {
		t.Fatal("the hottest (newest) segment did not get the new layout")
	}

	// Queries over hot, cold and mixed regions stay exact on the mixed layout.
	for _, q := range []*query.Query{
		hotQ(),
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 1_000)),
		query.Aggregation("R", expr.AggMin, []data.AttrID{1, 2}, nil),
		query.Projection("R", []data.AttrID{0, 1, 2}, query.PredGt(0, 9_800)),
	} {
		res, _, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(reference(tb, q)) {
			t.Fatalf("mixed-layout result wrong for %s", q)
		}
	}
}

// TestSegmentPruningReachesExecInfo: the serving path surfaces how many
// segments a query scanned versus pruned, so operators can see zone maps
// working in production.
func TestSegmentPruningReachesExecInfo(t *testing.T) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 4), 5_000, 17)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	e := New(storage.BuildColumnMajorSeg(tb, 250), opts) // 20 segments
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{1}, query.PredLt(0, 200))
	res, info, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(reference(tb, q)) {
		t.Fatal("wrong result")
	}
	if info.SegmentsScanned == 0 || info.SegmentsPruned == 0 {
		t.Fatalf("segment counters missing from ExecInfo: %+v", info)
	}
	if info.SegmentsScanned+info.SegmentsPruned != 20 {
		t.Fatalf("scanned %d + pruned %d != 20 segments", info.SegmentsScanned, info.SegmentsPruned)
	}
	if info.SegmentsPruned < 18 {
		t.Fatalf("selective scan pruned only %d/20 segments", info.SegmentsPruned)
	}
}

// TestConcurrentReadsDuringSegmentReorg is the -race coverage for
// incremental reorganization: reader goroutines hammer read-only queries
// across hot and cold regions while the hot pattern drives adaptation and
// single-segment reorganizations under the exclusive lock. Every result
// must be exact — readers either see the old layout or the new one, never
// a half-reorganized segment.
func TestConcurrentReadsDuringSegmentReorg(t *testing.T) {
	const attrs, rows, segCap, readers = 8, 6_000, 300, 6
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", attrs), rows, 23)
	opts := DefaultOptions()
	opts.Window.InitialSize = 6
	opts.Window.MinSize = 4
	e := New(storage.BuildColumnMajorSeg(tb, segCap), opts)

	hotQ := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, 5_399))
	coldQ := query.Aggregation("R", expr.AggMax, []data.AttrID{3, 4}, query.PredLt(0, 600))
	wantHot := reference(tb, hotQ)
	wantCold := reference(tb, coldQ)

	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q, want := hotQ, wantHot
				if (r+i)%2 == 0 {
					q, want = coldQ, wantCold
				}
				res, _, err := e.Execute(q)
				if err != nil {
					errCh <- fmt.Errorf("reader %d iter %d: %w", r, i, err)
					return
				}
				if !res.Equal(want) {
					errCh <- fmt.Errorf("reader %d iter %d: result diverged during reorg", r, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if e.Stats().Reorgs == 0 {
		t.Log("note: no reorganization triggered during the race window (legal, but the test is most useful when one fires)")
	}
}
