package core

import (
	"fmt"
	"math/rand"
	"testing"

	"h2o/internal/affinity"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

const (
	tAttrs = 30
	tRows  = 20_000
)

func table(t *testing.T) *data.Table {
	t.Helper()
	return data.Generate(data.SyntheticSchema("R", tAttrs), tRows, 1234)
}

// reference computes the expected result with naive loops.
func reference(tb *data.Table, q *query.Query) *exec.Result {
	rel := storage.BuildRowMajor(tb, false)
	res, err := exec.Exec(rel, q, exec.ExecOpts{Strategy: exec.StrategyGeneric})
	if err != nil {
		panic(err)
	}
	return res
}

func hotQueries(n int) []*query.Query {
	hot := []data.AttrID{2, 5, 9, 14}
	rng := rand.New(rand.NewSource(7))
	out := make([]*query.Query, n)
	for i := range out {
		// Same hot attribute set with varying predicate constants.
		out[i] = query.Aggregation("R", expr.AggSum, hot, query.PredLt(hot[0], rng.Int63n(2*data.ValueHi)-data.ValueHi))
	}
	return out
}

func TestAdaptiveEngineCorrectness(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		attrs := query.RandomAttrs(tAttrs, 1+rng.Intn(6), rng.Intn)
		var q *query.Query
		switch i % 4 {
		case 0:
			q = query.Projection("R", attrs, query.PredGt(rng.Intn(tAttrs), 0))
		case 1:
			q = query.Aggregation("R", expr.AggMax, attrs, nil)
		case 2:
			q = query.ArithExpression("R", attrs, query.PredLt(rng.Intn(tAttrs), 0))
		default:
			q = query.AggExpression("R", attrs, nil)
		}
		res, info, err := e.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want := reference(tb, q); !res.Equal(want) {
			t.Fatalf("query %d (%s, strategy %v): wrong result", i, q, info.Strategy)
		}
	}
	if e.Stats().Queries != 60 {
		t.Fatalf("stats.Queries = %d", e.Stats().Queries)
	}
}

func TestAdaptiveEngineReorganizes(t *testing.T) {
	tb := table(t)
	opts := DefaultOptions()
	opts.Window.InitialSize = 10
	e := NewH2O(tb, opts)

	queries := hotQueries(40)
	sawReorg := false
	for i, q := range queries {
		res, info, err := e.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if info.Reorganized {
			sawReorg = true
			if len(info.NewGroup) == 0 {
				t.Fatal("reorg reported without a new group")
			}
			if !res.Equal(reference(tb, q)) {
				t.Fatalf("reorganizing query %d returned a wrong result", i)
			}
		}
	}
	if !sawReorg {
		t.Fatal("hot repeated pattern never triggered online reorganization")
	}
	st := e.Stats()
	if st.Adaptations == 0 || st.Reorgs == 0 || st.GroupsCreated == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// After reorganization the hot queries must run on the new group with
	// the fused row strategy.
	_, info, err := e.Execute(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != exec.StrategyRow {
		t.Fatalf("post-reorg strategy = %v, want row-fused over the new group", info.Strategy)
	}
	// The created group must hold correct data.
	g, ok := e.Relation().ExactGroup([]data.AttrID{2, 5, 9, 14})
	if !ok {
		t.Fatalf("expected group {2,5,9,14}; layout: %s", e.Relation().LayoutSignature())
	}
	for r := 0; r < 100; r++ {
		for _, a := range g.Attrs {
			if g.Value(r, a) != tb.Value(r, a) {
				t.Fatal("new group corrupted data")
			}
		}
	}
}

func TestStaticModesNeverAdapt(t *testing.T) {
	tb := table(t)
	for _, mk := range []func() *Engine{
		func() *Engine { return NewRowStore(tb, true) },
		func() *Engine { return NewColumnStore(tb) },
	} {
		e := mk()
		groupsBefore := len(e.Relation().Segments[0].Groups)
		for _, q := range hotQueries(30) {
			res, info, err := e.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if info.Reorganized {
				t.Fatalf("%v engine reorganized", e.opts.Mode)
			}
			if !res.Equal(reference(tb, q)) {
				t.Fatalf("%v engine wrong result", e.opts.Mode)
			}
		}
		st := e.Stats()
		if st.Adaptations != 0 || st.Reorgs != 0 {
			t.Fatalf("%v engine adapted: %+v", e.opts.Mode, st)
		}
		if len(e.Relation().Segments[0].Groups) != groupsBefore {
			t.Fatalf("%v engine changed its layout", e.opts.Mode)
		}
	}
}

func TestStaticStrategiesArePinned(t *testing.T) {
	tb := table(t)
	row := NewRowStore(tb, false)
	col := NewColumnStore(tb)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	_, info, err := row.Execute(q)
	if err != nil || info.Strategy != exec.StrategyRow {
		t.Fatalf("row engine strategy = %v err=%v", info.Strategy, err)
	}
	_, info, err = col.Execute(q)
	if err != nil || info.Strategy != exec.StrategyColumn {
		t.Fatalf("column engine strategy = %v err=%v", info.Strategy, err)
	}
}

func TestGenericFallbackForOddShapes(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	or := &expr.Or{L: query.PredLt(0, 0).(*expr.Cmp), R: query.PredGt(1, 0).(*expr.Cmp)}
	q := query.Aggregation("R", expr.AggCount, []data.AttrID{2}, or)
	res, info, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != exec.StrategyGeneric {
		t.Fatalf("strategy = %v, want generic", info.Strategy)
	}
	if !res.Equal(reference(tb, q)) {
		t.Fatal("generic fallback computed a wrong result")
	}
}

func TestMaxGroupsEviction(t *testing.T) {
	tb := table(t)
	opts := DefaultOptions()
	opts.Window.InitialSize = 4
	opts.Window.MinSize = 2
	opts.MaxGroups = tAttrs + 2 // base columns + at most 2 extra groups
	e := NewH2O(tb, opts)
	rng := rand.New(rand.NewSource(3))
	// Rotate between several hot sets to force multiple group creations.
	sets := [][]data.AttrID{{0, 1, 2}, {5, 6, 7}, {10, 11, 12}, {15, 16, 17}, {20, 21, 22}}
	for round := 0; round < 10; round++ {
		for _, s := range sets {
			for i := 0; i < 6; i++ {
				q := query.Aggregation("R", expr.AggSum, s, query.PredLt(s[0], rng.Int63n(data.ValueHi)))
				if _, _, err := e.Execute(q); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if got := len(e.Relation().Segments[0].Groups); got > opts.MaxGroups {
		t.Fatalf("groups = %d exceeds cap %d", got, opts.MaxGroups)
	}
	if e.Stats().GroupsCreated >= 3 && e.Stats().GroupsDropped == 0 {
		t.Fatalf("created %d groups but never evicted under a tight cap", e.Stats().GroupsCreated)
	}
}

func TestDynamicWindowAdaptsFasterThanStatic(t *testing.T) {
	tb := table(t)
	mk := func(dynamic bool) *Engine {
		opts := DefaultOptions()
		opts.Window = affinity.Config{
			InitialSize: 30, MinSize: 4, MaxSize: 60,
			NoveltyOverlap: 0.5, Dynamic: dynamic,
		}
		return NewH2O(tb, opts)
	}
	// Fig. 9's shape: 15 queries on one attribute set, then a shift. The
	// paper's Fig. 9 queries compute arithmetic expressions — the class
	// where merged groups beat per-column layouts.
	phase1 := []data.AttrID{1, 2, 3, 4}
	phase2 := []data.AttrID{20, 21, 22, 23}
	seq := make([]*query.Query, 0, 60)
	for i := 0; i < 15; i++ {
		seq = append(seq, query.AggExpression("R", phase1, nil))
	}
	for i := 0; i < 45; i++ {
		seq = append(seq, query.AggExpression("R", phase2, nil))
	}
	firstReorg := func(e *Engine) int {
		for i, q := range seq {
			_, info, err := e.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if info.Reorganized && data.ContainsAll(info.NewGroup, phase2) {
				return i
			}
		}
		return len(seq)
	}
	dyn := firstReorg(mk(true))
	stat := firstReorg(mk(false))
	if dyn >= stat {
		t.Fatalf("dynamic window adapted at query %d, static at %d; dynamic must be earlier", dyn, stat)
	}
}

func TestOracleMatchesReference(t *testing.T) {
	tb := table(t)
	o := NewOracle(tb)
	qs := []*query.Query{
		query.Projection("R", []data.AttrID{1, 3}, query.PredLt(5, 0)),
		query.Aggregation("R", expr.AggMax, []data.AttrID{2, 8}, nil),
		query.AggExpression("R", []data.AttrID{0, 7, 9}, query.PredGt(4, 0)),
	}
	for _, q := range qs {
		res, d, err := o.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Fatal("negative duration")
		}
		if !res.Equal(reference(tb, q)) {
			t.Fatalf("oracle wrong for %s", q)
		}
	}
	// Repeated pattern reuses the cached perfect group.
	if _, _, err := o.Execute(qs[0]); err != nil {
		t.Fatal(err)
	}
	if len(o.cache) != 3 {
		t.Fatalf("oracle cache size = %d, want 3", len(o.cache))
	}
}

func TestExecuteSQL(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	parse := func(src string) (*query.Query, error) {
		return nil, nil // never used: engine must call the parser we hand it
	}
	_ = parse
	called := false
	res, _, err := e.ExecuteSQL("select max(a1) from R", func(src string) (*query.Query, error) {
		called = true
		return query.Aggregation("R", expr.AggMax, []data.AttrID{1}, nil), nil
	})
	if err != nil || !called || res.Rows != 1 {
		t.Fatalf("ExecuteSQL: res=%v called=%v err=%v", res, called, err)
	}
}

func TestSelectivityEstimateLearning(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	// A highly selective projection teaches the engine its true selectivity.
	cut := data.ValueLo + (data.ValueHi-data.ValueLo)/100
	q := query.Projection("R", []data.AttrID{1, 2}, query.PredLt(0, cut))
	if _, _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	got, ok := e.selEst[query.InfoOf(q).Pattern()]
	if !ok {
		t.Fatal("selectivity was not recorded")
	}
	if got < 0 || got > 0.05 {
		t.Fatalf("learned selectivity %.3f, expected ~0.01", got)
	}
}

func TestConcurrentExecute(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	qs := hotQueries(8)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				q := qs[(w+i)%len(qs)]
				res, _, err := e.Execute(q)
				if err != nil {
					done <- err
					return
				}
				if res.Rows != 1 {
					done <- fmt.Errorf("bad result shape %d", res.Rows)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Queries; got != 80 {
		t.Fatalf("queries counted = %d, want 80", got)
	}
}

func TestParallelismOption(t *testing.T) {
	tb := table(t)
	opts := DefaultOptions()
	opts.Parallelism = 4
	serialOpts := DefaultOptions()
	par := New(storage.BuildRowMajor(tb, false), opts)
	ser := New(storage.BuildRowMajor(tb, false), serialOpts)
	for _, q := range hotQueries(10) {
		rp, ip, err := par.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := ser.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !rp.Equal(rs) {
			t.Fatal("parallel engine disagrees with serial engine")
		}
		if ip.Strategy != exec.StrategyRow {
			t.Fatalf("row layout should use the row strategy, got %v", ip.Strategy)
		}
	}
}

func TestExplain(t *testing.T) {
	tb := table(t)
	e := NewH2O(tb, DefaultOptions())
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 5, 9}, query.PredLt(0, 0))
	ex, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Alternatives) < 2 {
		t.Fatalf("alternatives = %v", ex.Alternatives)
	}
	for i := 1; i < len(ex.Alternatives); i++ {
		if ex.Alternatives[i].Cost < ex.Alternatives[i-1].Cost {
			t.Fatal("alternatives not sorted by cost")
		}
	}
	if ex.Strategy != ex.Alternatives[0].Strategy {
		t.Fatal("chosen strategy must be the cheapest alternative")
	}
	if len(ex.CoveringGroups) == 0 {
		t.Fatal("no covering groups reported")
	}
	// Explain must not advance the engine.
	if e.Stats().Queries != 0 {
		t.Fatal("Explain executed the query")
	}
	// A pending proposal covering the query is surfaced.
	opts := DefaultOptions()
	opts.Window.InitialSize = 6
	e2 := NewH2O(tb, opts)
	// Drive enough hot queries to schedule an adaptation but pick a query
	// whose cost-model gain is too small to trigger reorganization (tiny
	// horizon), leaving the proposal pending.
	e2.opts.AmortizationHorizon = 1
	for _, q := range hotQueries(12) {
		if _, _, err := e2.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if len(e2.PendingProposals()) > 0 {
		ex2, err := e2.Explain(hotQueries(1)[0])
		if err != nil {
			t.Fatal(err)
		}
		if ex2.PendingProposal == nil {
			t.Fatal("pending proposal covering the query not surfaced")
		}
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeAdaptive, ModeStaticRow, ModeStaticColumn, ModeFrozen, Mode(42)} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
}
