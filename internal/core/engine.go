// Package core assembles H2O (paper Figure 3): the Data Layout Manager that
// owns the relation's column groups, the Query Processor that picks the best
// (layout, execution strategy) combination per query with the cost model,
// the Operator Generator that produces specialized access operators, and the
// Adaptation Mechanism that monitors the workload through a dynamic query
// window, proposes new layouts, and creates them lazily — fused into the
// first query that benefits.
//
// The package also provides the paper's comparison engines: a static
// row-store, a static column-store (both sharing this code base, as in §4.1)
// and the "optimal" oracle that enjoys a perfectly tailored layout for every
// query with no creation cost.
//
// Engines are safe for many simultaneous clients: read-only queries on a
// stable layout share a read lock and run concurrently (the paper's engines
// are "tuned to use all the available CPUs"), while inserts, adaptation
// phases and online reorganizations take an exclusive per-relation lock.
// Every mutation advances the version counter of each segment it touches;
// the serving layer (internal/server) keys its result cache on per-query
// touch fingerprints over those versions (see QueryFingerprint), so a
// mutation implicitly invalidates exactly the cached results whose queries
// read a mutated segment.
//
// Adaptation is *incremental* at segment granularity: relations are stored
// as fixed-capacity segments (internal/storage), and a triggered
// reorganization stitches the advisor's layout only into the segments the
// workload made hot — the rest keep their old layout, so a relation can
// legitimately hold mixed layouts across segments and a reorganization
// costs O(hot segments), not O(relation). Inserts likewise touch only the
// tail segment.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"h2o/internal/advisor"
	"h2o/internal/affinity"
	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/opgen"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Mode fixes or frees the engine's layout/strategy choices.
type Mode int

const (
	// ModeAdaptive is full H2O: monitoring, adaptation, lazy reorganization
	// and cost-based strategy choice.
	ModeAdaptive Mode = iota
	// ModeStaticRow pins the row layout and the volcano row strategy
	// (the paper's "Row-store" comparison engine).
	ModeStaticRow
	// ModeStaticColumn pins the column layout and the late-materialization
	// column strategy (the paper's "Column-store" comparison engine).
	ModeStaticColumn
	// ModeFrozen keeps whatever groups the relation has but disables
	// adaptation; strategy choice stays cost-based. Used for sensitivity
	// experiments over fixed hybrid layouts.
	ModeFrozen
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAdaptive:
		return "h2o-adaptive"
	case ModeStaticRow:
		return "row-store"
	case ModeStaticColumn:
		return "column-store"
	case ModeFrozen:
		return "frozen"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure an engine instance.
type Options struct {
	Mode Mode
	// Window configures the monitoring window (adaptive mode only).
	Window affinity.Config
	// Advisor configures the adaptation algorithm.
	Advisor advisor.Config
	// Cost configures the cost model.
	Cost costmodel.Params
	// OpGen configures the operator generator.
	OpGen opgen.Config
	// MaxGroups caps the number of co-existing column groups; beyond it the
	// least-recently-used droppable group is evicted ("there is not enough
	// space to store these alternatives"). Zero selects an automatic cap of
	// 2x the schema width plus slack, so a fresh column-major layout never
	// starts over budget.
	MaxGroups int
	// AmortizationHorizon is the number of future queries over which a
	// reorganization must pay for itself before the engine triggers it; 0
	// means "current window size".
	AmortizationHorizon int
	// Parallelism fans fused scans out across this many goroutines, one
	// task per storage segment (the paper's engines "use all the available
	// CPUs"). 0 or 1 keeps scans serial.
	Parallelism int
	// HotSegmentReads is the number of scans (since the last adaptation
	// phase) that marks a segment hot: online reorganization stitches the
	// advisor's layout into hot segments only — plus whichever segments the
	// triggering query touches — and leaves cold segments on their old
	// layout, so reorganization cost scales with the hot fraction of the
	// data. 0 selects the default of 1.
	HotSegmentReads int
	// MemoryBudgetBytes caps the bytes of segment data this engine — i.e.
	// this one relation — holds in memory (tiered storage): when the
	// relation's resident footprint exceeds the budget, the engine spills
	// the coldest sealed segments to disk and pages them back in on
	// demand through a loader. The budget is per engine, so a catalog of
	// N budgeted tables can keep up to N x MemoryBudgetBytes resident.
	// Zone maps and all layout metadata stay resident, so spilled
	// segments are still pruned for free, and residency changes never
	// bump the relation version — cached results survive a spill/fault
	// cycle. 0 disables spilling (everything stays in memory).
	MemoryBudgetBytes int64
	// SpillDir is the directory for spilled segment files; file names
	// embed the relation name, so engines over distinct tables may share
	// one directory. Empty with a budget set selects a fresh temporary
	// directory, created at first spill and removed by Engine.Close. An
	// unusable directory never fails construction: eviction is skipped
	// and TierStats.SpillErrors counts the failures.
	SpillDir string
	// EncodedTier enables the compressed encoded tier: sealed segments
	// build per-column encoded blocks (FOR, delta or RLE, picked per
	// column at seal time), the memory-budget eviction ladder demotes
	// flat segments to their encoded form before resorting to spill
	// writes, and aggregate-shaped queries execute directly over the
	// encoded blocks (exec.StrategyEncoded), skipping or folding whole
	// blocks from their headers. Off by default: mutable tails and
	// non-encoded relations behave exactly as before.
	EncodedTier bool
	// SegmentCapacity is the rows-per-segment of relations built *for* this
	// options set by the facade (h2o.DB table registration). The engine
	// itself executes over whatever segmentation its relation already has;
	// this knob only parameterizes construction. 0 selects
	// storage.DefaultSegmentCapacity (64K rows).
	SegmentCapacity int
	// PartialCacheBytes budgets the serving layer's per-segment partial
	// aggregate payloads (delta repair): the facade passes it through to
	// every server it builds over this catalog. The engine itself never
	// reads it — like the server sizing knobs, it parameterizes the layers
	// above. 0 selects the server default (4 MiB); negative disables
	// partial caching and with it delta repair.
	PartialCacheBytes int64
	// Shards splits every table the facade registers across this many
	// in-process engines behind a scatter-gather router (internal/shard):
	// segment-sized chunks place round-robin, layout adaptation stays
	// per-shard, and aggregate/grouped queries merge per-shard partial
	// aggregates under the partials merge law. Parallelism divides across
	// the shards. Like SegmentCapacity, the engine itself never reads it —
	// it parameterizes table construction in the layers above. 0 or 1
	// keeps the single-engine path.
	Shards int
}

// DefaultOptions returns the adaptive configuration used in §4.1.
func DefaultOptions() Options {
	return Options{
		Mode:    ModeAdaptive,
		Window:  affinity.DefaultConfig(),
		Advisor: advisor.DefaultConfig(),
		Cost:    costmodel.Default(),
		OpGen:   opgen.DefaultConfig(),
		// MaxGroups 0 = automatic (2x schema width plus slack).
	}
}

// ExecInfo reports how one query was executed.
type ExecInfo struct {
	Strategy exec.Strategy
	Layout   storage.LayoutKind // kind of the layout actually scanned
	// Reorganized is true when the query piggybacked the creation of new
	// segment-local column groups (online reorganization).
	Reorganized bool
	// NewGroup is the attribute set of the groups created, if any.
	NewGroup []data.AttrID
	// SegmentsReorganized counts the segments that received the new group:
	// incremental adaptation touches only hot segments, so this is usually
	// far below the relation's segment count.
	SegmentsReorganized int
	// SegmentsScanned and SegmentsPruned report how much of the relation
	// the scan touched versus skipped outright via per-segment zone maps.
	SegmentsScanned int
	SegmentsPruned  int
	// SegmentsTouched lists the indices of the segments the execution
	// actually read, in ascending segment order (pruned and empty segments
	// excluded). len(SegmentsTouched) == SegmentsScanned.
	SegmentsTouched []int
	// Fingerprint identifies the candidate touch set — the segments q may
	// read per zone-map pruning — and their versions, computed under the
	// engine lock held for the execution (after any reorganization this
	// query performed). The serving layer keys its result cache on it:
	// mutations confined to segments outside the set leave it unchanged,
	// so cached results survive them.
	Fingerprint TouchFingerprint
	// SegmentsFaulted counts spilled segments this query paged in from
	// disk (tiered storage); zero when everything it touched was resident.
	SegmentsFaulted int
	// DecodeSkips counts encoded blocks whose payload was never decoded —
	// pruned or folded into the aggregate from the block header alone.
	// EncodedBytes is the encoded payload actually consumed. Both are zero
	// outside the encoded-direct path (Options.EncodedTier).
	DecodeSkips  int
	EncodedBytes int64
	// RepairedSegments counts the candidate segments a serving-layer delta
	// repair rescanned for this query — the segments whose versions moved
	// since the cached partials were computed, not the relation's segment
	// count. Zero for exact cache hits and full executions; set by the
	// serving layer (internal/server), never by the engine.
	RepairedSegments int
	// CompileTime is the simulated operator-generation cost charged to this
	// query (zero on operator-cache hits).
	CompileTime time.Duration
	// Duration is the measured wall-clock execution time, including
	// reorganization and compile time.
	Duration time.Duration
	// EstimatedCost is the cost model's estimate for the chosen plan.
	EstimatedCost costmodel.Seconds
	// WindowSize is the monitoring window size after this query.
	WindowSize int
	// CacheHit is set by the serving layer (internal/server) when the result
	// came from the versioned result cache instead of an execution; the
	// engine itself never sets it.
	CacheHit bool
}

// Stats accumulates engine-lifetime counters.
type Stats struct {
	Queries         int
	Adaptations     int
	Reorgs          int
	GroupsCreated   int
	GroupsDropped   int
	OpCacheHits     int
	OpCacheMisses   int
	GenericFallback int
}

// Engine is one H2O instance bound to a single relation. Execute is safe
// for concurrent use and is designed for many simultaneous read-only
// clients: queries on a stable layout share a read lock and run in
// parallel, while mutations — inserts, adaptation phases, online
// reorganizations — take the exclusive lock. Lightweight per-query
// bookkeeping (the monitoring window, statistics, selectivity estimates,
// group recency) lives behind a second, short-critical-section mutex so it
// never serializes the scans themselves.
//
// Lock ordering: mu (any mode) may be held when acquiring stateMu; stateMu
// is a leaf lock — no code path acquires mu while holding it.
type Engine struct {
	// mu guards the relation: its data (appends) and its group set
	// (reorganization). Read-only query execution holds it shared.
	mu sync.RWMutex
	// stateMu guards the adaptive bookkeeping: win, pending, selEst,
	// lastUsed and stats. Critical sections are O(query attributes), never
	// O(rows).
	stateMu sync.Mutex

	rel   *storage.Relation
	opts  Options
	model *costmodel.Model
	win   *affinity.Window
	gen   *opgen.Generator
	// tier enforces MemoryBudgetBytes (nil when no budget is set): it
	// spills cold sealed segments and serves as the relation's loader.
	tier *tierManager

	// pending holds adaptation proposals not yet materialized (lazy
	// layouts). Guarded by stateMu.
	pending []advisor.Proposal
	// declined remembers query patterns whose covering proposal was
	// evaluated and turned down (insufficient amortized gain), so repeat
	// queries stop paying the exclusive-lock reorg check and run on the
	// shared read path. Reset on every adaptation phase (new proposals, new
	// economics). Guarded by stateMu.
	declined map[string]struct{}
	// selEst tracks the observed selectivity per access pattern, feeding the
	// cost model's estimates. Guarded by stateMu.
	selEst map[string]float64
	// lastUsed tracks group recency for MaxGroups eviction. Guarded by
	// stateMu.
	lastUsed map[*storage.ColumnGroup]int

	// stats is guarded by stateMu.
	stats Stats
}

// New builds an engine over rel. The relation's current groups are the
// starting layout; the paper notes the initial layout only affects the first
// few queries.
func New(rel *storage.Relation, opts Options) *Engine {
	if opts.MaxGroups <= 0 {
		opts.MaxGroups = 2*rel.Schema.NumAttrs() + 16
	}
	if opts.HotSegmentReads <= 0 {
		opts.HotSegmentReads = 1
	}
	e := &Engine{
		rel:      rel,
		opts:     opts,
		model:    costmodel.New(opts.Cost),
		win:      affinity.NewWindow(rel.Schema.NumAttrs(), opts.Window),
		gen:      opgen.New(opts.OpGen),
		selEst:   make(map[string]float64),
		lastUsed: make(map[*storage.ColumnGroup]int),
		declined: make(map[string]struct{}),
	}
	if opts.EncodedTier {
		rel.EncodeOnSeal = true
		// Backfill segments sealed before this engine existed (bulk
		// builds, snapshot loads): the encoded-direct scan path only
		// serves segments that already carry their encoded form.
		tail := rel.Tail()
		for _, seg := range rel.Segments {
			if seg == tail || seg.Rows == 0 || !seg.Resident() {
				continue
			}
			for _, g := range seg.Groups {
				g.Encoding()
			}
		}
	}
	if opts.MemoryBudgetBytes > 0 {
		e.tier = newTierManager(rel, opts.MemoryBudgetBytes, opts.SpillDir, opts.EncodedTier)
	}
	return e
}

// Relation exposes the engine's relation for inspection by tools and tests.
// The returned value is the live relation: do not mutate it, and do not read
// it while queries are executing concurrently — use View for reads that
// must coexist with concurrent clients.
func (e *Engine) Relation() *storage.Relation { return e.rel }

// View runs fn with the relation read-locked: safe against concurrent
// inserts and reorganizations. fn must not mutate the relation and must not
// call back into the engine (the lock is not reentrant).
func (e *Engine) View(fn func(*storage.Relation) error) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return fn(e.rel)
}

// Version returns the relation's mutation counter: it advances on every
// insert and every layout reorganization. Serving layers key result caches
// on it. Safe to call without any engine lock.
func (e *Engine) Version() uint64 { return e.rel.Version() }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	s := e.stats
	s.OpCacheHits, s.OpCacheMisses = e.gen.Stats()
	return s
}

// PendingProposals returns the adaptation proposals awaiting a triggering
// query.
func (e *Engine) PendingProposals() []advisor.Proposal {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return append([]advisor.Proposal(nil), e.pending...)
}

// WindowSize returns the current monitoring window size.
func (e *Engine) WindowSize() int {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.win.Size()
}

// windowSize is WindowSize for internal callers that do not hold stateMu.
func (e *Engine) windowSize() int {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.win.Size()
}

// ExecuteSQL parses and executes a SQL statement against the relation.
func (e *Engine) ExecuteSQL(src string, parse func(string) (*query.Query, error)) (*exec.Result, ExecInfo, error) {
	q, err := parse(src)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	return e.Execute(q)
}

// Execute runs one query: it monitors the access pattern, periodically runs
// the adaptation mechanism, lazily materializes a proposed layout when this
// query benefits, picks the cheapest (layout, strategy) combination, obtains
// the specialized operator and executes it.
//
// Concurrency: queries that neither trigger an adaptation phase nor are
// covered by a pending layout proposal — the steady state between
// workload shifts — execute under a shared read lock, so any number of
// them scan the relation simultaneously. Only adaptation, reorganization
// and inserts serialize on the exclusive lock.
func (e *Engine) Execute(q *query.Query) (*exec.Result, ExecInfo, error) {
	res, info, err := e.execute(q)
	// Scans and reorganizations may have paged spilled segments in;
	// re-enforce the memory budget only after every lock execute held is
	// released, under the shared lock — spill-file fsyncs never run under
	// the exclusive lock and never stall concurrent readers.
	if e.tier != nil {
		e.mu.RLock()
		e.tier.enforce()
		e.mu.RUnlock()
	}
	return res, info, err
}

// execute is Execute without the budget-enforcement epilogue.
func (e *Engine) execute(q *query.Query) (*exec.Result, ExecInfo, error) {
	start := time.Now()
	info := query.InfoOf(q)
	adaptive := e.opts.Mode == ModeAdaptive

	var obs affinity.Observation
	exclusive := false
	e.stateMu.Lock()
	e.stats.Queries++
	if adaptive {
		obs = e.win.Observe(info)
		if obs.Due {
			exclusive = true
		} else if _, turned := e.declined[info.Pattern()]; !turned {
			exclusive = e.pendingCoversLocked(q.AllAttrs())
		}
	}
	e.stateMu.Unlock()

	if exclusive {
		e.mu.Lock()
		defer e.mu.Unlock()
		if obs.Due {
			// Re-check under the exclusive lock: several concurrent queries
			// can observe Due at the same window boundary, but only the
			// first to get here should run the adaptation phase —
			// MarkAdapted resets the counter, turning the rest into
			// ordinary queries.
			e.stateMu.Lock()
			stillDue := e.win.SinceAdaptation() >= e.win.Size()
			e.stateMu.Unlock()
			if stillDue {
				e.adapt()
			}
		}
		// Lazy reorganization: if a pending proposal covers this query and
		// the cost model says the new layout pays for itself within the
		// horizon, create it as part of answering the query.
		if res, execInfo, done, err := e.tryReorg(q, info, start); done {
			return res, execInfo, err
		}
		// The covering proposal (if any) did not fire for this pattern:
		// remember that, so repeats take the shared read path until the
		// next adaptation phase changes the proposal pool.
		e.stateMu.Lock()
		e.declined[info.Pattern()] = struct{}{}
		e.stateMu.Unlock()
		return e.run(q, info, start)
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.run(q, info, start)
}

// run picks the cheapest strategy and executes it. The caller holds e.mu in
// read or write mode.
func (e *Engine) run(q *query.Query, info query.Info, start time.Time) (*exec.Result, ExecInfo, error) {
	strategy, estCost := e.chooseStrategy(q, info)

	// Encoded-direct fast path: with the encoded tier enabled,
	// aggregate-shaped queries run straight over the per-column encoded
	// blocks of sealed segments — block headers prune or fold whole blocks
	// without touching their payloads, and spilled segments fault in only
	// their compact encoded form instead of rehydrating flat data. Shapes
	// outside the encoded pipeline's reach (projections, unsplittable predicates)
	// fall through to the cost-based paths below. ServesEncoded gates the
	// attempt on some unpruned segment actually carrying encoded blocks (or
	// living spilled), so an all-flat relation never reports
	// StrategyEncoded.
	if e.opts.EncodedTier && exec.ServesEncoded(e.rel, q) {
		var st exec.StrategyStats
		res, err := exec.Exec(e.rel, q, exec.ExecOpts{Strategy: exec.StrategyEncoded, Stats: &st})
		if err == nil {
			e.recordSelectivity(info, q, res)
			e.touchGroups(q)
			applyLimit(q, res)
			return res, ExecInfo{
				Strategy:        exec.StrategyEncoded,
				Layout:          e.rel.Kind(),
				EstimatedCost:   estCost,
				WindowSize:      e.windowSize(),
				SegmentsScanned: st.SegmentsScanned,
				SegmentsPruned:  st.SegmentsPruned,
				SegmentsFaulted: st.SegmentsFaulted,
				SegmentsTouched: st.Touched,
				DecodeSkips:     st.DecodeSkips,
				EncodedBytes:    st.EncodedBytes,
				Fingerprint:     TouchFingerprintOf(e.rel, q),
				Duration:        time.Since(start),
			}, nil
		}
		if err != exec.ErrUnsupported {
			return nil, ExecInfo{}, err
		}
	}

	// Parallel fast path: fused row scans fan out with one task per storage
	// segment, so the parallelism granularity matches the data partitioning.
	// A hybrid plan degenerates to the same fused scan whenever one group
	// per segment covers the whole query, so it takes the parallel path too
	// — intra-query parallelism composes with the inter-query parallelism
	// of the read lock.
	if e.opts.Parallelism > 1 && (strategy == exec.StrategyRow || strategy == exec.StrategyHybrid) {
		if exec.RowCovered(e.rel, q) {
			var st exec.StrategyStats
			if res, err := exec.Exec(e.rel, q, exec.ExecOpts{Strategy: exec.StrategyRow, Workers: e.opts.Parallelism, Stats: &st}); err == nil {
				e.recordSelectivity(info, q, res)
				e.touchGroups(q)
				applyLimit(q, res)
				return res, ExecInfo{
					Strategy:        strategy,
					Layout:          e.rel.Kind(),
					EstimatedCost:   estCost,
					WindowSize:      e.windowSize(),
					SegmentsScanned: st.SegmentsScanned,
					SegmentsPruned:  st.SegmentsPruned,
					SegmentsFaulted: st.SegmentsFaulted,
					SegmentsTouched: st.Touched,
					Fingerprint:     TouchFingerprintOf(e.rel, q),
					Duration:        time.Since(start),
				}, nil
			}
			// Unsupported shape: fall through to the operator path.
		}
	}

	op, cached, err := e.gen.Operator(strategy, e.rel, q)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	res, st, err := op.Run(e.rel, q)
	if err == exec.ErrUnsupported {
		// Shape outside the template library: generic operator.
		e.stateMu.Lock()
		e.stats.GenericFallback++
		e.stateMu.Unlock()
		strategy = exec.StrategyGeneric
		op, cached, err = e.gen.Operator(strategy, e.rel, q)
		if err != nil {
			return nil, ExecInfo{}, err
		}
		res, st, err = op.Run(e.rel, q)
	}
	if err != nil {
		return nil, ExecInfo{}, err
	}

	e.recordSelectivity(info, q, res)
	e.touchGroups(q)
	applyLimit(q, res)

	ei := ExecInfo{
		Strategy:      strategy,
		Layout:        e.rel.Kind(),
		EstimatedCost: estCost,
		WindowSize:    e.windowSize(),
		// Computed under the lock the execution held, so the fingerprint
		// matches exactly the state the result was read from.
		Fingerprint: TouchFingerprintOf(e.rel, q),
		Duration:    time.Since(start),
	}
	if st != nil {
		ei.SegmentsScanned = st.SegmentsScanned
		ei.SegmentsPruned = st.SegmentsPruned
		ei.SegmentsFaulted = st.SegmentsFaulted
		ei.SegmentsTouched = st.Touched
		ei.DecodeSkips = st.DecodeSkips
		ei.EncodedBytes = st.EncodedBytes
	}
	if !cached {
		ei.CompileTime = op.CompileTime
		ei.Duration += op.CompileTime
	}
	return res, ei, nil
}

// pendingCoversLocked reports whether any pending proposal covers the
// attribute set. Caller holds stateMu.
func (e *Engine) pendingCoversLocked(all []data.AttrID) bool {
	for i := range e.pending {
		if data.ContainsAll(e.pending[i].Attrs, all) {
			return true
		}
	}
	return false
}

// Insert appends tuples (full-width, schema attribute order) to the
// relation. Every column group — including groups the adaptation mechanism
// created — grows consistently, and the tail segment's version advances so
// result caches drop entries for queries that read the tail (entries
// pinned to other segments by their predicates survive). Cached operators
// need no invalidation: they rebind the relation on each call and the cost
// model reads live row counts.
func (e *Engine) Insert(tuples [][]data.Value) error {
	e.mu.Lock()
	err := e.rel.AppendBatch(tuples)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	// A batch can seal the tail, making a fresh segment evictable; keep
	// the resident footprint under the memory budget. Enforcement runs
	// under the shared lock, after the exclusive one is released, so the
	// spill-file fsyncs never stall concurrent readers behind the write
	// lock.
	if e.tier != nil {
		e.mu.RLock()
		e.tier.enforce()
		e.mu.RUnlock()
	}
	return nil
}

// Explanation is the engine's plan report for one query, without executing
// it.
type Explanation struct {
	Strategy      exec.Strategy
	EstimatedCost costmodel.Seconds
	// Alternatives lists every executable strategy with its estimated cost,
	// cheapest first.
	Alternatives []StrategyCost
	// CoveringGroups is the attribute signature of each group the plan
	// would touch.
	CoveringGroups []string
	// PendingProposal is non-nil when a lazy layout proposal covers this
	// query (the next execution may reorganize).
	PendingProposal *advisor.Proposal
}

// StrategyCost pairs a strategy with its cost-model estimate.
type StrategyCost struct {
	Strategy exec.Strategy
	Cost     costmodel.Seconds
}

// Explain reports how the engine would execute q right now: the chosen
// strategy, the cost of every alternative, the groups the plan touches and
// whether a pending proposal covers the query. It does not execute the
// query and does not advance the monitoring window.
func (e *Engine) Explain(q *query.Query) (Explanation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	info := query.InfoOf(q)
	est := e.estimateSelectivity(info, q)
	var ex Explanation
	for _, s := range exec.ExplainStrategies() {
		plan := exec.AccessPlan(s, e.rel, q, est)
		if plan == nil {
			continue
		}
		ex.Alternatives = append(ex.Alternatives, StrategyCost{Strategy: s, Cost: e.model.QueryCost(plan)})
	}
	if len(ex.Alternatives) == 0 {
		return ex, fmt.Errorf("core: no executable strategy for %s", q)
	}
	sort.Slice(ex.Alternatives, func(i, j int) bool { return ex.Alternatives[i].Cost < ex.Alternatives[j].Cost })
	ex.Strategy = ex.Alternatives[0].Strategy
	ex.EstimatedCost = ex.Alternatives[0].Cost
	groups, _, err := e.rel.CoveringGroups(q.AllAttrs())
	if err != nil {
		return ex, err
	}
	for _, g := range groups {
		ex.CoveringGroups = append(ex.CoveringGroups, fmt.Sprint(g.Attrs))
	}
	all := q.AllAttrs()
	e.stateMu.Lock()
	for i := range e.pending {
		if data.ContainsAll(e.pending[i].Attrs, all) {
			p := e.pending[i]
			ex.PendingProposal = &p
			break
		}
	}
	e.stateMu.Unlock()
	return ex, nil
}

// adapt runs one adaptation phase: evaluate the window, compute proposals,
// keep them pending (lazy creation). Caller holds e.mu exclusively.
func (e *Engine) adapt() {
	e.stateMu.Lock()
	e.stats.Adaptations++
	e.win.MarkAdapted()
	recent := append([]query.Info(nil), e.win.Recent()...)
	e.stateMu.Unlock()

	proposals := advisor.Propose(e.rel, recent, e.model, e.opts.Advisor)

	e.stateMu.Lock()
	// Replace the pending pool: old un-triggered proposals reflect an older
	// window ("the recent query history is used as a trigger"), and past
	// reorg refusals no longer apply to the new pool.
	e.pending = proposals
	e.declined = make(map[string]struct{})
	e.stateMu.Unlock()

	// Segment hotness restarts with the new window: reorganization triggered
	// by the queries ahead should reflect where *they* concentrate.
	for _, seg := range e.rel.Segments {
		seg.ResetReads()
	}
}

// tryReorg checks whether a pending proposal should be materialized by this
// query. When it fires, the reorganizing operator answers the query while
// stitching the proposed group into the *hot* segments only — segments the
// recent workload scanned (plus those this query touches); cold segments
// keep their layout and their groups are neither copied nor rescanned, so
// one trigger costs O(hot segments). The proposal stays pending until every
// segment carries the group, letting later queries extend the layout to
// segments that become hot. Caller holds e.mu exclusively; every
// pending-pool mutator (adapt, removePending callers) also runs under the
// exclusive lock, so iterating e.pending directly is stable and race-free —
// concurrent holders of stateMu only read it.
func (e *Engine) tryReorg(q *query.Query, info query.Info, start time.Time) (*exec.Result, ExecInfo, bool, error) {
	all := q.AllAttrs()
	horizon := e.opts.AmortizationHorizon
	if horizon <= 0 {
		horizon = e.windowSize()
	}
	for i, p := range e.pending {
		if !data.ContainsAll(p.Attrs, all) {
			continue
		}
		if _, exists := e.rel.ExactGroup(p.Attrs); exists {
			e.removePending(i)
			return nil, ExecInfo{}, false, nil
		}
		// Does the new layout beat the current best plan by enough to
		// amortize the move within the horizon? Gain and move volume are
		// both restricted to the hot segments: adapting three hot segments
		// can pay even when reorganizing the whole relation would not.
		currStrat, currCost := e.chooseStrategy(q, info)
		newCost := e.costOnGroup(len(p.Attrs), len(all), info)
		gain := currCost - newCost
		if gain <= 0 {
			continue
		}
		_ = currStrat
		hot, hotRows, hotBytes := e.hotSegments(q, p)
		if hotRows == 0 {
			continue
		}
		gainHot := costmodel.Seconds(float64(gain) * float64(hotRows) / float64(e.rel.Rows))
		if !e.model.ReorgPays(gainHot, horizon, hotBytes) {
			continue
		}

		var st exec.StrategyStats
		var newGroups []*storage.ColumnGroup
		res, err := exec.Exec(e.rel, q, exec.ExecOpts{
			Strategy:   exec.StrategyReorg,
			ReorgAttrs: p.Attrs,
			HotMask:    hot,
			NewGroups:  &newGroups,
			Stats:      &st,
		})
		if err != nil {
			return nil, ExecInfo{}, true, err
		}
		applyLimit(q, res)
		reorged := 0
		for si, g := range newGroups {
			if g == nil {
				continue
			}
			if err := e.rel.Segments[si].AddGroup(g); err != nil {
				return nil, ExecInfo{}, true, err
			}
			reorged++
		}
		e.stateMu.Lock()
		e.stats.Reorgs++
		e.stats.GroupsCreated++
		e.stateMu.Unlock()
		if _, exists := e.rel.ExactGroup(p.Attrs); exists {
			// Every segment adapted: the proposal is fully realized.
			e.removePending(i)
		}
		e.touchGroups(q)
		e.evictIfNeeded()
		e.recordSelectivity(info, q, res)
		// Reorganization paged hot segments in and added new groups; the
		// budget is re-enforced by Execute's epilogue once the exclusive
		// lock is released.

		ei := ExecInfo{
			Strategy:            exec.StrategyReorg,
			Layout:              storage.KindGroup,
			Reorganized:         true,
			NewGroup:            p.Attrs,
			SegmentsReorganized: reorged,
			SegmentsScanned:     st.SegmentsScanned,
			SegmentsPruned:      st.SegmentsPruned,
			SegmentsFaulted:     st.SegmentsFaulted,
			SegmentsTouched:     st.Touched,
			// Computed after the new groups were registered (and any
			// MaxGroups eviction ran), still under the exclusive lock: the
			// fingerprint describes the post-reorganization state the
			// result is consistent with.
			Fingerprint: TouchFingerprintOf(e.rel, q),
			WindowSize:  e.windowSize(),
			Duration:    time.Since(start),
		}
		return res, ei, true, nil
	}
	return nil, ExecInfo{}, false, nil
}

// hotSegments classifies the relation's segments for an incremental
// reorganization into attrs: a segment is hot when the workload scanned it
// at least HotSegmentReads times since the last adaptation phase, or when
// the triggering query itself will touch it (it is about to be scanned
// anyway, so stitching rides along for free). Segments that already carry
// the group are never re-stitched. Returns the hot mask, the hot row count
// and the per-segment transform volume summed over hot segments. Caller
// holds e.mu exclusively.
func (e *Engine) hotSegments(q *query.Query, p advisor.Proposal) (hot []bool, hotRows int, hotBytes int64) {
	thresh := uint64(e.opts.HotSegmentReads)
	hot = make([]bool, len(e.rel.Segments))
	for si, seg := range e.rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if _, exists := seg.ExactGroup(p.Attrs); exists {
			continue
		}
		if seg.Reads() < thresh && !exec.QueryTouchesSegment(seg, q) {
			continue
		}
		hot[si] = true
		hotRows += seg.Rows
		if si < len(p.SegmentBytes) && p.SegmentBytes[si] > 0 {
			hotBytes += p.SegmentBytes[si]
		} else if b, err := storage.SegTransformBytes(seg, p.Attrs); err == nil {
			// Segments appended after the proposal was priced.
			hotBytes += b
		}
	}
	return hot, hotRows, hotBytes
}

// removePending drops the i-th pending proposal. Caller holds e.mu
// exclusively; stateMu guards the write against concurrent readers.
func (e *Engine) removePending(i int) {
	e.stateMu.Lock()
	e.pending = append(e.pending[:i], e.pending[i+1:]...)
	e.stateMu.Unlock()
}

// chooseStrategy evaluates the available (layout, strategy) combinations
// with the cost model and returns the cheapest executable one.
func (e *Engine) chooseStrategy(q *query.Query, info query.Info) (exec.Strategy, costmodel.Seconds) {
	switch e.opts.Mode {
	case ModeStaticRow:
		return exec.StrategyRow, 0
	case ModeStaticColumn:
		return exec.StrategyColumn, 0
	}
	est := e.estimateSelectivity(info, q)
	best := exec.StrategyGeneric
	var bestCost costmodel.Seconds
	first := true
	for _, s := range exec.CostedStrategies() {
		plan := exec.AccessPlan(s, e.rel, q, est)
		if plan == nil {
			continue
		}
		c := e.model.QueryCost(plan)
		if first || c < bestCost {
			best, bestCost, first = s, c, false
		}
	}
	return best, bestCost
}

// costOnGroup estimates the query cost if a dedicated group of the given
// width existed.
func (e *Engine) costOnGroup(groupWidth, used int, info query.Info) costmodel.Seconds {
	sel := e.estimateSelectivity(info, nil)
	if len(info.Where) == 0 {
		sel = 1
	}
	_ = sel
	return e.model.QueryCost([]costmodel.GroupAccess{{
		Stride: groupWidth, Width: groupWidth, Used: used,
		Rows: e.rel.Rows, Selectivity: 1,
	}})
}

// estimateSelectivity returns the engine's selectivity estimate for the
// query's pattern: the last observed selectivity if the pattern was seen
// before, else the advisor's default.
func (e *Engine) estimateSelectivity(info query.Info, q *query.Query) float64 {
	if q != nil && q.Where == nil {
		return 1
	}
	e.stateMu.Lock()
	s, ok := e.selEst[info.Pattern()]
	e.stateMu.Unlock()
	if ok {
		return s
	}
	return e.opts.Advisor.EstSelectivity
}

// recordSelectivity updates the per-pattern selectivity estimate from the
// observed result cardinality. Caller holds e.mu (any mode), keeping
// rel.Rows stable. Limited queries are skipped: their scans stop consuming
// segments once the limit is reached, so the observed row count is a
// prefix artifact, not the pattern's true selectivity (and the pattern key
// is shared with unlimited queries).
func (e *Engine) recordSelectivity(info query.Info, q *query.Query, res *exec.Result) {
	// Grouped queries are skipped like aggregates: their result cardinality
	// is the number of distinct key vectors, not the qualifying row count.
	if q.Where == nil || q.HasAggregates() || len(q.GroupBy) > 0 || q.Limit > 0 || e.rel.Rows == 0 {
		return
	}
	sel := float64(res.Rows) / float64(e.rel.Rows)
	e.stateMu.Lock()
	e.selEst[info.Pattern()] = sel
	e.stateMu.Unlock()
}

// applyLimit truncates a materialized result to q.Limit rows. Aggregate
// results (one row) are unaffected. The scan itself already stops consuming
// segments once the limit is reached (see the exec drivers); this trims the
// overshoot within the last scanned segment to exactly N rows. Grouped
// results scan every candidate segment regardless (the limit applies to
// groups, not rows), then trim here to the first N groups in key order —
// deterministic because every strategy emits groups ordered by key vector.
func applyLimit(q *query.Query, res *exec.Result) {
	if q.Limit <= 0 || res.Rows <= q.Limit {
		return
	}
	res.Rows = q.Limit
	res.Data = res.Data[:q.Limit*len(res.Cols)]
}

// touchGroups marks the segment-local groups serving q as recently used.
// The greedy set cover runs once per *distinct layout signature*, not once
// per segment — on the common uniform relation that is a single cover plus
// a cheap exact-group lookup per segment, keeping the stateMu critical
// section flat as segment counts grow. Caller holds e.mu (any mode).
func (e *Engine) touchGroups(q *query.Query) {
	all := q.AllAttrs()
	covers := make(map[string][][]data.AttrID, 1)
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	now := e.stats.Queries
	for _, seg := range e.rel.Segments {
		sig := seg.LayoutSignature()
		sets, seen := covers[sig]
		if !seen {
			groups, _, err := seg.CoveringGroups(all)
			if err != nil {
				covers[sig] = nil
				continue
			}
			for _, g := range groups {
				sets = append(sets, g.Attrs)
				e.lastUsed[g] = now
			}
			covers[sig] = sets
			continue
		}
		for _, attrs := range sets {
			if g, ok := seg.ExactGroup(attrs); ok {
				e.lastUsed[g] = now
			}
		}
	}
}

// evictIfNeeded drops least-recently-used groups beyond the per-segment
// MaxGroups cap, never breaking schema coverage. The cap applies segment by
// segment — layouts are segment-local, so the budget is too. Undroppable
// groups (sole cover of some attribute) are skipped in favor of the
// next-least-recently-used one. Caller holds e.mu exclusively (it mutates
// the group sets).
func (e *Engine) evictIfNeeded() {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	for _, seg := range e.rel.Segments {
		// Spilled segments are skipped: dropping a group there would save
		// disk, not memory, and would strand the segment's spill file (a
		// group-set mutation bumps the version the file was written at).
		// Mutations require residency.
		if !seg.Resident() {
			continue
		}
		for len(seg.Groups) > e.opts.MaxGroups {
			candidates := append([]*storage.ColumnGroup(nil), seg.Groups...)
			sort.Slice(candidates, func(i, j int) bool {
				return e.lastUsed[candidates[i]] < e.lastUsed[candidates[j]]
			})
			dropped := false
			for _, g := range candidates {
				if seg.DropGroup(g) {
					delete(e.lastUsed, g)
					e.stats.GroupsDropped++
					dropped = true
					break
				}
			}
			if !dropped {
				break // every group is load-bearing; live over the cap
			}
		}
	}
}
