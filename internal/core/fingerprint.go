package core

import (
	"strconv"

	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// TouchFingerprint identifies the *candidate touch set* of a query against
// one relation state: the set of segments the query may have to read — every
// non-empty segment whose zone maps do not rule the query's predicates out —
// together with those segments' versions. It is the unit of segment-precise
// result caching: two executions of the same query return identical results
// whenever their fingerprints match, because every segment that could
// contribute rows is provably unchanged (segment versions are drawn from a
// process-wide monotone clock and never reused), and every segment outside
// the set is provably non-contributing (its zone maps exclude the
// predicates). Mutations confined to segments a query never reads — tail
// appends behind a selective predicate, reorganizations of other segments —
// leave the fingerprint untouched, so cached results survive them.
//
// Computing a fingerprint reads only zone maps and atomic version counters —
// zone maps stay resident even for spilled segments (tiered storage), so the
// computation never touches disk. It is O(segments × predicate terms).
type TouchFingerprint struct {
	// Digest is an order-sensitive FNV-64 hash over the relation's
	// immutable identity followed by each candidate segment's (index,
	// version) pair. It is never zero for a computed fingerprint (the FNV
	// offset basis is folded in), so the zero TouchFingerprint doubles as
	// "not computed".
	Digest uint64
	// Segments is the number of candidate segments.
	Segments int
	// MaxVersion is the highest candidate segment version (0 when the
	// candidate set is empty).
	MaxVersion uint64
}

// Valid reports whether the fingerprint was actually computed against a
// relation — the zero value (e.g. from an ExecInfo a backend never filled
// in) is not valid and must not be used as a cache key.
func (f TouchFingerprint) Valid() bool { return f.Digest != 0 }

// Key renders the fingerprint for embedding in cache keys. The format is
// colon-free and unambiguous: 16 hex digits of the digest, then the segment
// count and max version in decimal, dot-separated.
func (f TouchFingerprint) Key() string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	d := f.Digest
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[d&0xf]
		d >>= 4
	}
	return string(b[:]) + "." + strconv.Itoa(f.Segments) + "." + strconv.FormatUint(f.MaxVersion, 10)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// CombineFingerprints folds an ordered sequence of per-backend fingerprints
// into one: the digest is the order-sensitive FNV-1a mix of the component
// digests, the candidate-segment counts add, and the max version is the
// maximum. A sharded deployment publishes the combination of its shards'
// fingerprints as the query's fingerprint: any component moving moves the
// combination (so stale combined entries can never be re-addressed), while
// mutations that leave every component untouched leave it addressable.
// The digest is never zero — the offset basis is folded in — so a combined
// fingerprint is Valid even over zero components.
func CombineFingerprints(fps []TouchFingerprint) TouchFingerprint {
	var out TouchFingerprint
	h := uint64(fnvOffset64)
	for _, fp := range fps {
		h = fnvMix(h, fp.Digest)
		out.Segments += fp.Segments
		if fp.MaxVersion > out.MaxVersion {
			out.MaxVersion = fp.MaxVersion
		}
	}
	out.Digest = h
	return out
}

// fnvMix folds one 64-bit word into the running FNV-1a hash, low byte
// first.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// TouchFingerprintOf computes q's candidate-touch fingerprint against rel.
// The caller must hold the relation stable (the engine lock, shared mode is
// enough): the segment list and zone maps must not change underneath the
// scan. Non-splittable predicate shapes (disjunctions, expression
// comparisons) conservatively treat every non-empty segment as a candidate,
// exactly as the execution strategies do.
func TouchFingerprintOf(rel *storage.Relation, q *query.Query) TouchFingerprint {
	// Split the conjunction once; the per-segment check is then pure
	// zone-map lookups — the whole fingerprint is O(segments × terms) with
	// one allocation, cheap enough for every admission.
	preds, splittable := exec.SplitConjunction(q.Where)
	return TouchFingerprintPreds(rel, preds, splittable)
}

// TouchFingerprintPreds is TouchFingerprintOf with the prune predicates
// pre-split and rebased to rel's local attribute ids. Join admission uses
// it to fingerprint each input relation against its own side of the
// query's predicates (exec.JoinSidePreds); the combined join fingerprint
// is CombineFingerprints over the left then right side fingerprints. The
// caller must hold the relation stable, as for TouchFingerprintOf.
func TouchFingerprintPreds(rel *storage.Relation, preds []exec.ColPred, splittable bool) TouchFingerprint {
	h := fnvMix(fnvOffset64, rel.ID())
	var fp TouchFingerprint
	for si, seg := range rel.Segments {
		if !exec.SegmentTouched(seg, preds, splittable) {
			continue
		}
		v := seg.Version()
		h = fnvMix(h, uint64(si))
		h = fnvMix(h, v)
		fp.Segments++
		if v > fp.MaxVersion {
			fp.MaxVersion = v
		}
	}
	fp.Digest = h
	return fp
}

// QueryFingerprint computes the candidate-touch fingerprint for q under the
// engine's shared read lock — the admission-time snapshot of the serving
// layer's segment-precise result cache. It reads zone maps and atomic
// version counters only (zone maps never spill), so the cost is O(segments)
// with no data access and no disk I/O, cheap enough to run on every query
// admission.
func (e *Engine) QueryFingerprint(q *query.Query) TouchFingerprint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return TouchFingerprintOf(e.rel, q)
}

// SideFingerprint computes one join side's candidate-touch fingerprint
// under the engine's shared read lock: preds are that side's prune
// predicates in this relation's local attribute ids (exec.JoinSidePreds).
// The two-engine join path in the facade instead computes both sides
// inside one locked section so fingerprint and execution see the same
// snapshot; this method serves admission-time fingerprinting, where each
// side is snapshotted independently and any interleaved mutation simply
// moves the combined digest.
func (e *Engine) SideFingerprint(preds []exec.ColPred, splittable bool) TouchFingerprint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return TouchFingerprintPreds(e.rel, preds, splittable)
}

// SegmentVersions snapshots the relation's per-segment version vector under
// the shared read lock. Observability and tests use it; the serving layer
// uses the query-specific QueryFingerprint instead.
func (e *Engine) SegmentVersions() []uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rel.SegmentVersions()
}
