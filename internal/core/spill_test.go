package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// spillEngine builds an engine over an append-ordered segmented relation
// with the given memory budget (0 = unlimited) and frozen adaptation, so
// tests measure the tiered-storage machinery, not layout changes.
func spillEngine(t testing.TB, rows, segCap int, budget int64) (*Engine, *data.Table) {
	t.Helper()
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 31)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	opts.MemoryBudgetBytes = budget
	opts.SpillDir = t.TempDir()
	return New(storage.BuildColumnMajorSeg(tb, segCap), opts), tb
}

func spillQueries() []*query.Query {
	return []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil),
		query.Aggregation("R", expr.AggMax, []data.AttrID{3}, query.PredLt(0, 900)),
		query.Aggregation("R", expr.AggMin, []data.AttrID{1, 4}, query.PredGt(0, 3_100)),
		query.Projection("R", []data.AttrID{0, 2}, query.PredGt(0, 3_800)),
		query.Projection("R", []data.AttrID{1, 3, 5}, query.PredLt(0, 150)),
	}
}

// TestSpillRoundTripResults is the acceptance gate: with budgets forcing
// ~0%, ~50% and 100% residency, every query returns results identical to
// the fully resident run, across repeated executions that keep evicting
// and faulting segments.
func TestSpillRoundTripResults(t *testing.T) {
	const rows, segCap = 4_000, 250 // 16 segments
	full, tb := spillEngine(t, rows, segCap, 0)
	relBytes := full.Relation().Bytes()

	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"residency-0pct", 1},
		{"residency-25pct", relBytes / 4},
		{"residency-50pct", relBytes / 2},
		{"residency-100pct", 4 * relBytes},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := spillEngine(t, rows, segCap, tc.budget)
			e.EnforceBudget()
			for round := 0; round < 3; round++ {
				for qi, q := range spillQueries() {
					res, _, err := e.Execute(q)
					if err != nil {
						t.Fatalf("round %d query %d: %v", round, qi, err)
					}
					if !res.Equal(reference(tb, q)) {
						t.Fatalf("round %d query %d: spilled result diverged from resident run", round, qi)
					}
				}
				e.EnforceBudget()
			}
			ts := e.TierStats()
			if tc.budget == 1 && ts.Evictions == 0 {
				t.Fatalf("tiny budget never evicted: %+v", ts)
			}
			if tc.budget >= 4*relBytes && (ts.Evictions != 0 || ts.Faults != 0) {
				t.Fatalf("ample budget did I/O: %+v", ts)
			}
		})
	}
}

// TestTinyBudgetSpillsAllSealed pins the residency arithmetic: with a
// 1-byte budget everything but the mutable tail is spilled, and resident
// bytes shrink accordingly.
func TestTinyBudgetSpillsAllSealed(t *testing.T) {
	e, _ := spillEngine(t, 4_000, 250, 1)
	e.EnforceBudget()
	rel := e.Relation()
	ts := e.TierStats()
	if want := len(rel.Segments) - 1; ts.SpilledSegments != want {
		t.Fatalf("spilled %d segments, want %d (all but the tail)", ts.SpilledSegments, want)
	}
	if got, want := rel.ResidentBytes(), rel.Tail().Bytes(); got != want {
		t.Fatalf("resident bytes %d, want tail only %d", got, want)
	}
}

// TestPrunedColdSegmentsNoDiskReads: a selective scan over append-ordered
// data must answer from the tail region without faulting a single spilled
// cold segment — zone maps stay resident, so pruning costs no I/O.
func TestPrunedColdSegmentsNoDiskReads(t *testing.T) {
	const rows, segCap = 4_000, 250
	e, tb := spillEngine(t, rows, segCap, 1)
	e.EnforceBudget()
	before := e.TierStats().Faults

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, 3_799))
	res, info, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(reference(tb, q)) {
		t.Fatal("wrong result")
	}
	if info.SegmentsPruned < 13 {
		t.Fatalf("selective scan pruned only %d segments: %+v", info.SegmentsPruned, info)
	}
	faults := e.TierStats().Faults - before
	if faults != uint64(info.SegmentsFaulted) {
		t.Fatalf("fault accounting diverged: tier says %d, ExecInfo says %d", faults, info.SegmentsFaulted)
	}
	// The hot region is the sealed segment(s) right before the tail: at
	// most 2 faults are legitimate (segment 3800/250=15.2 spans two).
	if faults > 2 {
		t.Fatalf("selective scan faulted %d cold segments in; pruning should have kept them on disk", faults)
	}
}

// TestConcurrentScansRacingEviction is the -race coverage for the tiered
// layer: readers hammer hot and cold queries (faulting segments in) while
// the main goroutine keeps enforcing a tiny budget (evicting them) and
// appending rows. Results must stay exact throughout.
func TestConcurrentScansRacingEviction(t *testing.T) {
	const rows, segCap, readers, iters = 3_000, 250, 4, 40
	e, tb := spillEngine(t, rows, segCap, 1)
	e.EnforceBudget()

	queries := []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil),
		query.Aggregation("R", expr.AggMax, []data.AttrID{3}, query.PredLt(0, 700)),
		query.Aggregation("R", expr.AggMin, []data.AttrID{1}, query.PredGt(0, 2_500)),
	}
	expected := make([]*exec.Result, len(queries))
	for i, q := range queries {
		expected[i] = reference(tb, q)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (r + i) % len(queries)
				res, _, err := e.Execute(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("reader %d iter %d: %w", r, i, err)
					return
				}
				if !res.Equal(expected[qi]) {
					errCh <- fmt.Errorf("reader %d iter %d: result diverged while racing eviction", r, i)
					return
				}
			}
		}(r)
	}
	// Keep evicting what the readers fault in, and grow the relation so
	// tail seals make fresh eviction candidates mid-race.
	// a0=1000 falls outside both predicates, and zero a1/a2 keep the
	// unpredicated sum unchanged, so the expected results stay valid.
	tuple := []data.Value{1000, 0, 0, 0, 0, 0}
	for i := 0; i < 2*iters; i++ {
		e.EnforceBudget()
		if i%4 == 0 {
			if err := e.Insert([][]data.Value{tuple}); err != nil {
				t.Error(err)
				break
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if e.TierStats().Evictions == 0 {
		t.Fatal("race window never evicted; test lost its teeth")
	}
}

// TestCorruptSpillFileSurfacesCleanError: a bit-flipped segment file must
// turn into a query error, not a panic or silent wrong result.
func TestCorruptSpillFileSurfacesCleanError(t *testing.T) {
	const rows, segCap = 2_000, 250
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 31)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	opts.MemoryBudgetBytes = 1
	opts.SpillDir = t.TempDir()
	e := New(storage.BuildColumnMajorSeg(tb, segCap), opts)
	e.EnforceBudget()
	if e.TierStats().SpilledSegments == 0 {
		t.Fatal("nothing spilled")
	}

	// Corrupt every spill file's data section.
	files, err := filepath.Glob(filepath.Join(opts.SpillDir, "*.h2oseg"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files found: %v", err)
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		if err := os.WriteFile(f, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
	if _, _, err := e.Execute(q); err == nil {
		t.Fatal("scan over corrupted spill files must fail cleanly")
	}
}

// TestEvictionFreesHeapMemory pins the larger-than-memory promise itself:
// spilling the sealed segments of a budgeted engine must release real heap
// bytes, not just zero the accounting. Engines are built from slicing
// constructors whose segments share one backing array — the tier manager
// compacts at setup precisely so this test can pass.
func TestEvictionFreesHeapMemory(t *testing.T) {
	const rows, segCap = 160_000, 10_000 // ~7.7 MB of segment data
	e, _ := spillEngine(t, rows, segCap, 1)
	relBytes := e.Relation().Bytes()

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := heap()
	e.EnforceBudget()
	after := heap()

	if e.TierStats().SpilledSegments == 0 {
		t.Fatal("nothing spilled")
	}
	freed := int64(before) - int64(after)
	if freed < relBytes/2 {
		t.Fatalf("eviction freed %d bytes of a %d-byte relation; spilling is not releasing memory", freed, relBytes)
	}
}

// TestBrokenSpillDirDegradesGracefully: an unusable spill directory must
// not fail engine construction or queries — eviction is skipped (the
// engine just stays fully resident) and SpillErrors counts the failures.
func TestBrokenSpillDirDegradesGracefully(t *testing.T) {
	const rows, segCap = 2_000, 250
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 31)
	// A regular file where the spill dir should be: MkdirAll must fail.
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	opts.MemoryBudgetBytes = 1
	opts.SpillDir = blocker
	e := New(storage.BuildColumnMajorSeg(tb, segCap), opts)
	e.EnforceBudget()
	ts := e.TierStats()
	if ts.SpillErrors == 0 {
		t.Fatalf("broken spill dir not surfaced: %+v", ts)
	}
	if ts.SpilledSegments != 0 {
		t.Fatalf("segments spilled without a working store: %+v", ts)
	}
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
	res, _, err := e.Execute(q)
	if err != nil {
		t.Fatalf("resident queries must keep working: %v", err)
	}
	if !res.Equal(reference(tb, q)) {
		t.Fatal("wrong result")
	}
}

// TestCloseRemovesSpillFiles: Engine.Close deletes the relation's segment
// files from the spill directory.
func TestCloseRemovesSpillFiles(t *testing.T) {
	e, _ := spillEngine(t, 2_000, 250, 1)
	e.EnforceBudget()
	dir := e.opts.SpillDir
	files, err := filepath.Glob(filepath.Join(dir, "*.h2oseg"))
	if err != nil || len(files) == 0 {
		t.Fatalf("expected spill files, got %v (err %v)", files, err)
	}
	e.Close()
	files, _ = filepath.Glob(filepath.Join(dir, "*.h2oseg"))
	if len(files) != 0 {
		t.Fatalf("Close left spill files behind: %v", files)
	}
}

// TestPageInDoesNotBumpVersion guards the result-cache contract: a full
// spill/fault cycle leaves the relation version untouched, so cached
// results keyed on it stay valid (no cache poisoning by residency noise).
func TestPageInDoesNotBumpVersion(t *testing.T) {
	e, tb := spillEngine(t, 2_000, 250, 1)
	v0 := e.Version()
	e.EnforceBudget()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	res, info, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if info.SegmentsFaulted == 0 {
		t.Fatalf("full scan over a spilled relation faulted nothing: %+v", info)
	}
	if !res.Equal(reference(tb, q)) {
		t.Fatal("wrong result")
	}
	if e.Version() != v0 {
		t.Fatalf("version moved %d -> %d across spill/fault; residency must not invalidate caches", v0, e.Version())
	}
}

// BenchmarkScanSpilled measures the acceptance benchmark: a selective scan
// over append-ordered data with nearly everything spilled. Zone-map
// pruning keeps cold segments on disk, so per-iteration faults stay at
// zero after the first touch of the hot region.
func BenchmarkScanSpilled(b *testing.B) {
	const rows, segCap = 64_000, 4_000
	e, _ := spillEngine(b, rows, segCap, 1)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, data.Value(rows)-800))
	if _, _, err := e.Execute(q); err != nil { // warm the hot region
		b.Fatal(err)
	}
	start := e.TierStats().Faults
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := e.TierStats().Faults - start; d != 0 {
		b.Fatalf("pruned cold segments incurred %d disk reads; want zero", d)
	}
}

// BenchmarkScanResident is the same scan with no budget, for comparing the
// pure overhead of the pin/release discipline.
func BenchmarkScanResident(b *testing.B) {
	const rows, segCap = 64_000, 4_000
	e, _ := spillEngine(b, rows, segCap, 0)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, data.Value(rows)-800))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}
