package core

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"h2o/internal/persist"
	"h2o/internal/storage"
)

// TierStats snapshots one engine's tiered-storage state: how much of the
// relation is flat-resident, encoded-resident or spilled, and the lifetime
// I/O counters.
type TierStats struct {
	ResidentSegments int
	// EncodedSegments counts segments on the middle residency rung: flat
	// data dropped, compact encoded form on the heap (always zero unless
	// Options.EncodedTier is set). A segment whose encodings are served
	// straight from an mmap of its spill file holds no heap data and
	// counts as spilled instead.
	EncodedSegments int
	SpilledSegments int
	// ResidentBytes is the segment data currently held on the heap —
	// flat mini-tuples plus the heap footprint of encoded-resident
	// segments; SpilledBytes is the logical (flat) size of the data
	// living only in spill files.
	ResidentBytes int64
	SpilledBytes  int64
	// EncodedBytes is the total payload of the encodings currently
	// installed across all segments (heap or mmap-backed), whatever the
	// residency rung. Comparing it to the flat byte volume gives the
	// in-memory compression ratio.
	EncodedBytes int64
	// SpillFileBytes is the on-disk size of the current spill files; with
	// the encoded tier these hold encoded blocks, so SpillFileBytes over
	// SpilledBytes is the on-disk compression ratio.
	SpillFileBytes int64
	// Faults counts page-ins served (disk reads) and FaultedBytes the
	// spill-file bytes those faults covered (for mmap-served files this
	// is the mapped size — the OS faults individual 4K pages lazily, so
	// the bytes actually read can be lower). Evictions counts segments
	// unloaded to disk and Demotions segments dropped to the encoded rung
	// (no I/O); SpillWrites counts segment files written (at most one per
	// segment version — re-evicting an unchanged segment reuses its
	// file). SpillErrors counts failed spill-file writes (or a spill
	// directory that could not be created): a non-zero, growing value
	// means the disk tier is broken and the engine cannot shed memory —
	// the budget is not being enforced.
	Faults       uint64
	FaultedBytes uint64
	Evictions    uint64
	Demotions    uint64
	SpillWrites  uint64
	SpillErrors  uint64
}

// SegmentHeatFunc reports, per segment index, how many cached
// serving-layer artifacts (versioned results, partial aggregate payloads)
// currently reference that segment. The tier manager consults it when
// picking eviction victims: spilling a segment that many cached entries
// depend on makes their future repairs and revalidations pay disk faults,
// so low-heat segments go first. The function must take its own snapshot
// locks only — it is called with the tier manager's mutex held.
type SegmentHeatFunc func() map[int]int

// tierManager enforces Options.MemoryBudgetBytes over one relation: when
// the resident segment data exceeds the budget it spills the coldest
// sealed segments — fewest reads since the last adaptation phase, oldest
// first on ties — to a persist.SegmentStore, and serves as the relation's
// Loader to page them back in on demand. Residency changes never bump the
// relation or segment version, so result-cache entries survive a
// spill/fault cycle untouched.
//
// Concurrency: enforce may run under the engine's shared read lock — it
// synchronizes with in-flight scans purely through per-segment pins,
// skipping any segment a scan holds. Lock order is tm.mu -> segment
// residency lock; the loader runs under a segment's residency lock and
// takes no tierManager locks, so the two directions never deadlock.
type tierManager struct {
	rel    *storage.Relation
	budget int64
	// dir is the configured spill directory; empty means "a temp dir,
	// created (and owned — removed on close) at first spill". store is
	// built lazily on first use, so construction performs no I/O and a
	// broken spill path degrades to spillErrors + no eviction instead of
	// failing engine construction.
	dir     string
	ownsDir bool
	store   atomic.Pointer[persist.SegmentStore]

	// mu serializes enforcement passes and guards spilledV, dir and
	// closed.
	mu sync.Mutex
	// closed fences enforce/ensureStore after close: a late enforcement
	// pass (e.g. an insert's, racing a table replacement) must not
	// recreate the removed spill directory and strand files in it.
	closed bool
	// spilledV records the segment version each spill file was written at.
	// A segment mutated since its last spill (a reorganization added a
	// group) has a stale file, which is rewritten before the next
	// eviction; the version check in ReadSegment makes the staleness
	// detection crash-proof rather than advisory.
	spilledV map[*storage.Segment]uint64
	// spilledSize mirrors spilledV with each file's on-disk size, feeding
	// TierStats.SpillFileBytes and FaultedBytes without re-statting files
	// on every snapshot.
	spilledSize map[*storage.Segment]int64
	// heat is the serving layer's cache-reference count hook (nil until
	// Engine.SetSegmentHeat); guarded by mu like the maps above.
	heat SegmentHeatFunc

	// encoded enables the middle eviction rung: demote flat segments to
	// their encoded form (no I/O) before resorting to spill writes.
	encoded bool

	// id makes this manager's spill-file keys unique within the process,
	// so an old engine's close (table replacement) can never delete the
	// files of the engine that replaced it in a shared SpillDir.
	id uint64

	evictions    atomic.Uint64
	demotions    atomic.Uint64
	spillWrites  atomic.Uint64
	spillErrors  atomic.Uint64
	faultedBytes atomic.Uint64
}

// tierSeq hands out process-unique tier-manager ids.
var tierSeq atomic.Uint64

// newTierManager builds the manager and installs its loader on rel. An
// empty dir selects a fresh temporary directory, created at first spill
// and removed again by close. The relation is compacted so each segment
// owns its buffers: without that, slicing-built relations share one
// backing array across segments and unloading would free nothing.
func newTierManager(rel *storage.Relation, budget int64, dir string, encoded bool) *tierManager {
	rel.Compact()
	tm := &tierManager{
		rel:         rel,
		budget:      budget,
		dir:         dir,
		ownsDir:     dir == "",
		encoded:     encoded,
		id:          tierSeq.Add(1),
		spilledV:    make(map[*storage.Segment]uint64),
		spilledSize: make(map[*storage.Segment]int64),
	}
	rel.SetLoader(tm.load)
	return tm
}

// ensureStore lazily creates the spill directory and store. Caller holds
// tm.mu; the store pointer is published atomically because the loader
// reads it without tm.mu.
func (tm *tierManager) ensureStore() (*persist.SegmentStore, error) {
	if st := tm.store.Load(); st != nil {
		return st, nil
	}
	if tm.closed {
		return nil, fmt.Errorf("core: spill store of %q is closed", tm.rel.Schema.Name)
	}
	if tm.dir == "" {
		d, err := os.MkdirTemp("", "h2o-spill-")
		if err != nil {
			return nil, err
		}
		tm.dir = d
	}
	st, err := persist.NewSegmentStore(tm.dir)
	if err != nil {
		return nil, err
	}
	tm.store.Store(st)
	return st, nil
}

// key names a segment's spill file. Sealed segments never move, so the
// index is stable; the relation name keeps tables sharing one SpillDir
// apart, and the process-unique manager id keeps successive engines over
// the *same* table name apart, so closing a replaced engine removes only
// its own files. (Distinct processes sharing one SpillDir remain
// unsupported.)
func (tm *tierManager) key(si int) string {
	return fmt.Sprintf("%s-e%d-seg%06d", tm.rel.Schema.Name, tm.id, si)
}

// load is the relation's Loader: it faults one spilled segment back in
// from its spill file. It runs under the segment's residency lock and must
// not take tm.mu (see the lock-order note on tierManager). A segment can
// only be spilled after the store was created, so a nil store here means
// the tier was closed underneath a stale engine reference.
func (tm *tierManager) load(seg *storage.Segment) error {
	st := tm.store.Load()
	if st == nil {
		return fmt.Errorf("core: spill store of %q is closed", tm.rel.Schema.Name)
	}
	for si, s := range tm.rel.Segments {
		if s == seg {
			if err := st.ReadSegment(tm.key(si), seg); err != nil {
				return err
			}
			// Attribute the fault's I/O volume. The file is statted rather
			// than looked up in spilledSize because load must not take
			// tm.mu (see the lock-order note above).
			if fi, err := os.Stat(st.Path(tm.key(si))); err == nil {
				tm.faultedBytes.Add(uint64(fi.Size()))
			}
			return nil
		}
	}
	return fmt.Errorf("core: spilled segment not found in relation %q", tm.rel.Schema.Name)
}

// enforce runs one eviction pass: if the relation's resident bytes exceed
// the budget, sealed resident segments are evicted coldest-first until the
// budget holds or no evictable segment remains (the mutable tail and any
// segment pinned by an in-flight scan are never evicted). With the encoded
// tier enabled, eviction descends a two-rung ladder: first demote flat
// segments to their compact encoded form — pure CPU, no I/O — and only if
// the budget still does not hold, spill to disk and unload. A segment whose
// spill file is missing or stale is written — pinned, atomically — before
// its data is dropped, so the file on disk always matches the segment
// version it claims.
//
// Victim order is (cache heat asc, reads asc, segment index asc): segments
// that few cached results or partials reference go first, because evicting
// a heavily-referenced segment turns every future repair or revalidation of
// those entries into a disk fault.
func (tm *tierManager) enforce() {
	// One enforcement pass at a time is enough: if another query's pass is
	// already running, piling up behind it would only re-scan the same
	// segments — skip instead of serializing tail latencies on tm.mu.
	if !tm.mu.TryLock() {
		return
	}
	defer tm.mu.Unlock()
	if tm.closed {
		return
	}

	tail := tm.rel.Tail()
	type candidate struct {
		si    int
		seg   *storage.Segment
		reads uint64
		heat  int
	}
	var heat map[int]int
	if tm.heat != nil {
		heat = tm.heat()
	}
	var resident int64
	var cands []candidate
	for si, seg := range tm.rel.Segments {
		b := seg.ResidentBytes()
		resident += b
		if seg != tail && seg.Rows > 0 && b > 0 {
			cands = append(cands, candidate{si, seg, seg.Reads(), heat[si]})
		}
	}
	if resident <= tm.budget {
		return
	}
	// Coldest first: fewest cache references, then fewest reads since the
	// last adaptation phase, then oldest (lowest index — append-ordered
	// data ages front to back).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat != cands[j].heat {
			return cands[i].heat < cands[j].heat
		}
		if cands[i].reads != cands[j].reads {
			return cands[i].reads < cands[j].reads
		}
		return cands[i].si < cands[j].si
	})

	// Rung 1 (encoded tier only): demote flat segments to encoded form.
	// Frees the flat arrays for the price of an encode pass — no disk
	// involved, and a later scan recovers the data by decoding in memory.
	if tm.encoded {
		for _, c := range cands {
			if resident <= tm.budget {
				return
			}
			before := c.seg.ResidentBytes()
			if c.seg.DemoteToEncoded() {
				tm.demotions.Add(1)
				resident -= before - c.seg.ResidentBytes()
			}
		}
		if resident <= tm.budget {
			return
		}
	}

	// Rung 2: spill to disk and unload.
	store, err := tm.ensureStore()
	if err != nil {
		// No spill directory, no eviction: count it so operators can see
		// the budget is not being enforced.
		tm.spillErrors.Add(1)
		return
	}
	for _, c := range cands {
		if resident <= tm.budget {
			break
		}
		b := c.seg.ResidentBytes()
		if b == 0 {
			continue // raced with nothing — spilled segments were filtered — but stay safe
		}
		ver := c.seg.Version()
		if tm.spilledV[c.seg] != ver {
			// No current spill file: write one before dropping the data,
			// holding the segment pinned so a concurrent scan cannot
			// observe a half-spilled state. The encoded-or-better pin
			// avoids decoding a demoted segment just to persist it —
			// WriteSegment works from the encodings either way.
			if _, err := c.seg.AcquireEncoded(); err != nil {
				continue
			}
			err := store.WriteSegment(tm.key(c.si), c.seg)
			c.seg.Release()
			if err != nil {
				// Cannot persist => must not evict; surfaced in TierStats
				// so a dead spill disk is diagnosable.
				tm.spillErrors.Add(1)
				continue
			}
			tm.spilledV[c.seg] = ver
			if fi, serr := os.Stat(store.Path(tm.key(c.si))); serr == nil {
				tm.spilledSize[c.seg] = fi.Size()
			}
			tm.spillWrites.Add(1)
		}
		if c.seg.Unload() {
			tm.evictions.Add(1)
			resident -= b
		}
	}
}

// stats snapshots the tier state.
func (tm *tierManager) stats() TierStats {
	var ts TierStats
	for _, seg := range tm.rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		ts.Faults += seg.Faults()
		ts.EncodedBytes += seg.EncodedBytes()
		switch b := seg.ResidentBytes(); {
		case seg.State() == storage.SegResident:
			ts.ResidentSegments++
			ts.ResidentBytes += b
		case b > 0:
			// Encoded rung proper: the compact form lives on the heap.
			ts.EncodedSegments++
			ts.ResidentBytes += b
		default:
			// Spilled, or encoded purely through an mmap of the spill file:
			// either way every byte is disk-backed and the heap holds
			// nothing, which is what "spilled" measures.
			ts.SpilledSegments++
			ts.SpilledBytes += seg.Bytes()
		}
	}
	tm.mu.Lock()
	for _, sz := range tm.spilledSize {
		ts.SpillFileBytes += sz
	}
	tm.mu.Unlock()
	ts.Evictions = tm.evictions.Load()
	ts.Demotions = tm.demotions.Load()
	ts.SpillWrites = tm.spillWrites.Load()
	ts.SpillErrors = tm.spillErrors.Load()
	ts.FaultedBytes = tm.faultedBytes.Load()
	return ts
}

// close deletes the relation's spill files (and the spill directory
// itself, when the manager created it) and drops the store. Spilled
// segment data is gone after close; the caller guarantees the engine is
// no longer serving queries.
func (tm *tierManager) close() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.closed = true
	st := tm.store.Swap(nil)
	if st == nil {
		return // never spilled anything
	}
	for si, seg := range tm.rel.Segments {
		// Drop any mmap-backed encoding before unlinking its file: the
		// kernel would keep unlinked pages alive, but the mapping would
		// pin disk space invisibly until the last segment reference died.
		_ = seg.ReleaseMapping()
		_ = st.Remove(tm.key(si))
	}
	if tm.ownsDir {
		_ = os.RemoveAll(tm.dir)
	}
	tm.spilledV = make(map[*storage.Segment]uint64)
	tm.spilledSize = make(map[*storage.Segment]int64)
}

// TierStats reports the engine's tiered-storage counters; the zero value
// when no memory budget is configured. The snapshot is taken under the
// engine's read lock so the segment list is stable.
func (e *Engine) TierStats() TierStats {
	if e.tier == nil {
		return TierStats{}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tier.stats()
}

// SetSegmentHeat installs the serving layer's cache-reference hook for
// cache-aware eviction (see SegmentHeatFunc). A nil fn reverts to pure
// coldest-first ordering; a no-op on engines without a memory budget.
func (e *Engine) SetSegmentHeat(fn SegmentHeatFunc) {
	if e.tier == nil {
		return
	}
	e.tier.mu.Lock()
	e.tier.heat = fn
	e.tier.mu.Unlock()
}

// EnforceBudget runs one eviction pass immediately, instead of waiting for
// the next query or insert to trigger it. Tests and operational tooling
// use it to establish a known residency state; a no-op without a budget.
func (e *Engine) EnforceBudget() {
	if e.tier == nil {
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.tier.enforce()
}

// Close releases the engine's tiered-storage resources: in-flight queries
// are waited out, then the relation's spill files are deleted (and the
// spill directory too, if the engine created it as a temp dir). Spilled
// segment data is unrecoverable afterwards, so the engine must not be
// used after Close. Engines without a memory budget hold no external
// resources and Close is a no-op.
func (e *Engine) Close() {
	if e.tier == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tier.close()
}
