package core

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

func benchTable(b *testing.B, attrs, rows int) *data.Table {
	b.Helper()
	return data.Generate(data.SyntheticSchema("R", attrs), rows, 77)
}

// BenchmarkEngineSteadyState measures a cache-warm adaptive engine answering
// a recurring query shape (operator cache hit, layout settled).
func BenchmarkEngineSteadyState(b *testing.B) {
	tb := benchTable(b, 50, 50_000)
	e := NewH2O(tb, DefaultOptions())
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{3, 9, 17, 25}, query.PredLt(0, 0))
	// Warm: settle the layout and the operator cache.
	for i := 0; i < 40; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineColdShapes measures the engine on a stream of always-new
// query shapes: every query misses the operator cache and re-plans.
func BenchmarkEngineColdShapes(b *testing.B) {
	tb := benchTable(b, 50, 50_000)
	e := NewH2O(tb, DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := data.AttrID(i % 50)
		bAttr := data.AttrID((i*7 + 3) % 50)
		q := query.Aggregation("R", expr.AggMax, data.SortedUnique([]data.AttrID{a, bAttr}), query.PredGt((a+1)%50, 0))
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticRowEngine and BenchmarkStaticColumnEngine are the fixed
// baselines on the same query, for comparison with the adaptive engine.
func BenchmarkStaticRowEngine(b *testing.B) {
	tb := benchTable(b, 50, 50_000)
	e := NewRowStore(tb, false)
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{3, 9, 17, 25}, query.PredLt(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticColumnEngine(b *testing.B) {
	tb := benchTable(b, 50, 50_000)
	e := NewColumnStore(tb)
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{3, 9, 17, 25}, query.PredLt(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracle measures the perfect-layout upper bound.
func BenchmarkOracle(b *testing.B) {
	tb := benchTable(b, 50, 50_000)
	o := NewOracle(tb)
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{3, 9, 17, 25}, query.PredLt(0, 0))
	if _, _, err := o.Execute(q); err != nil { // build the tailored group
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}
