// Package query defines the logical query representation shared by the
// parser, the monitoring/adaptation machinery and the execution layer:
// select-project-aggregate queries over one relation — the exact query class
// the paper evaluates (§4: "we focus on scan based queries and we do not
// consider joins") — extended with two-table equi-joins (Query.Joins), the
// first step past the paper's single-relation scope.
//
// A join query addresses attributes in a *combined* namespace: the left
// (FROM) table keeps its schema positions 0..nL-1 and the joined table's
// attributes follow at nL..nL+nR-1, so select items, predicates and group
// keys are ordinary expr trees over a single flat attribute space and every
// downstream classifier works unchanged. The execution layer maps combined
// ids back to per-side schema positions.
package query

import (
	"fmt"
	"sort"
	"strings"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// SelectItem is one output of a query: either a plain expression (projection
// or arithmetic expression) or an aggregate.
type SelectItem struct {
	Agg  *expr.Agg // non-nil for aggregates
	Expr expr.Expr // non-nil for plain expressions
}

// String renders the item in SQL-ish syntax.
func (it SelectItem) String() string {
	if it.Agg != nil {
		return it.Agg.String()
	}
	return it.Expr.String()
}

// Attrs appends the base attributes the item references.
func (it SelectItem) Attrs(dst []data.AttrID) []data.AttrID {
	if it.Agg != nil {
		return it.Agg.Attrs(dst)
	}
	return it.Expr.Attrs(dst)
}

// Join is one equi-join clause: the joined table and the pair of key
// columns the equality ties together. Both keys carry combined-namespace
// attribute ids: LeftKey addresses the accumulated attribute space of the
// tables joined so far (for a two-table join, the FROM table's own
// positions), RightKey addresses the joined table's attributes offset past
// it. Key Names carry the canonical rendering — the bare attribute name for
// FROM-table columns, "table.attr" for joined-table columns — so String()
// round-trips through the parser.
type Join struct {
	Table    string
	LeftKey  expr.Col
	RightKey expr.Col
}

// String renders the clause in SQL-ish syntax.
func (j Join) String() string {
	return fmt.Sprintf("join %s on %s = %s", j.Table, j.LeftKey.String(), j.RightKey.String())
}

// Query is a select-project-aggregate query over a single relation, or — when
// Joins is non-empty — over the equi-join of the FROM relation with the
// joined tables (attributes addressed in the combined namespace, see the
// package comment).
type Query struct {
	Table string
	// Joins lists the equi-join clauses in join order. The representation is
	// N-table-ready; the current execution layer serves exactly one.
	Joins []Join
	Items []SelectItem
	Where expr.Pred // nil when the query has no where clause
	// GroupBy lists the group-key columns, in GROUP BY order, deduplicated.
	// Empty means no grouping. A grouped query's select items must each be
	// either an aggregate or a bare reference to one of these keys; its
	// result has one row per distinct key vector, ordered ascending by key
	// vector, so every execution strategy produces the identical result.
	GroupBy []expr.Col
	// Limit truncates the materialized result to the first N rows; 0 means
	// no limit. Non-aggregate scans honor it with an early exit at segment
	// granularity — once N rows are selected, remaining segments are never
	// read — and the engine trims the last segment's overshoot to exactly
	// N. Aggregates consume every segment regardless (the limit applies to
	// result rows, and an aggregate has one). On grouped queries the limit
	// applies to *groups* after the per-segment group maps merge: the scan
	// still consumes every candidate segment, then the result is trimmed to
	// the first N groups in key order.
	Limit int
}

// String renders the query in SQL-ish syntax.
func (q *Query) String() string {
	parts := make([]string, len(q.Items))
	for i, it := range q.Items {
		parts[i] = it.String()
	}
	s := fmt.Sprintf("select %s from %s", strings.Join(parts, ", "), q.Table)
	for _, j := range q.Joins {
		s += " " + j.String()
	}
	if q.Where != nil {
		s += " where " + q.Where.String()
	}
	if len(q.GroupBy) > 0 {
		keys := make([]string, len(q.GroupBy))
		for i := range q.GroupBy {
			keys[i] = q.GroupBy[i].String()
		}
		s += " group by " + strings.Join(keys, ", ")
	}
	if q.Limit > 0 {
		s += fmt.Sprintf(" limit %d", q.Limit)
	}
	return s
}

// GroupIDs returns the group-key attribute ids in GROUP BY order, or nil
// when the query is not grouped.
func (q *Query) GroupIDs() []data.AttrID {
	if len(q.GroupBy) == 0 {
		return nil
	}
	ids := make([]data.AttrID, len(q.GroupBy))
	for i := range q.GroupBy {
		ids[i] = q.GroupBy[i].ID
	}
	return ids
}

// SelectAttrs returns the sorted set of attributes referenced in the select
// clause, including the group-key columns — the grouped output is keyed by
// them, so layout advice and covering-group resolution must see them.
func (q *Query) SelectAttrs() []data.AttrID {
	var out []data.AttrID
	for _, it := range q.Items {
		out = it.Attrs(out)
	}
	for i := range q.GroupBy {
		out = append(out, q.GroupBy[i].ID)
	}
	return data.SortedUnique(out)
}

// WhereAttrs returns the sorted set of attributes referenced in the where
// clause, or nil when there is none.
func (q *Query) WhereAttrs() []data.AttrID {
	if q.Where == nil {
		return nil
	}
	return data.SortedUnique(q.Where.Attrs(nil))
}

// AllAttrs returns the sorted set of all attributes the query touches,
// including equi-join keys (combined-namespace ids for join queries).
func (q *Query) AllAttrs() []data.AttrID {
	all := data.Union(q.SelectAttrs(), q.WhereAttrs())
	if len(q.Joins) > 0 {
		keys := make([]data.AttrID, 0, 2*len(q.Joins))
		for i := range q.Joins {
			keys = append(keys, q.Joins[i].LeftKey.ID, q.Joins[i].RightKey.ID)
		}
		all = data.Union(all, data.SortedUnique(keys))
	}
	return all
}

// Tables returns every table name the query references: the FROM table
// followed by the joined tables in join order.
func (q *Query) Tables() []string {
	out := make([]string, 0, 1+len(q.Joins))
	out = append(out, q.Table)
	for i := range q.Joins {
		out = append(out, q.Joins[i].Table)
	}
	return out
}

// HasAggregates reports whether any select item is an aggregate.
func (q *Query) HasAggregates() bool {
	for _, it := range q.Items {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// Info is the access-pattern summary of a query that the monitoring window
// stores: which attributes appear in the select and where clauses. The paper
// keeps the two clauses apart ("differentiating between attributes in the
// select and the where clause allows H2O to consider appropriate data
// layouts").
type Info struct {
	Select []data.AttrID // sorted
	Where  []data.AttrID // sorted
}

// InfoOf summarizes a query.
func InfoOf(q *Query) Info {
	return Info{Select: q.SelectAttrs(), Where: q.WhereAttrs()}
}

// All returns the union of the select- and where-clause attribute sets.
func (in Info) All() []data.AttrID { return data.Union(in.Select, in.Where) }

// Pattern returns a canonical string key for the query's access pattern,
// used for workload-shift detection and the operator cache.
func (in Info) Pattern() string {
	var b strings.Builder
	b.WriteString("s:")
	writeAttrs(&b, in.Select)
	b.WriteString(";w:")
	writeAttrs(&b, in.Where)
	return b.String()
}

func writeAttrs(b *strings.Builder, attrs []data.AttrID) {
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", a)
	}
}

// ---- Builders for the paper's query templates (§4.2.1) ----

// Projection builds template (i): select a, b, ... from R [where pred].
func Projection(table string, attrs []data.AttrID, where expr.Pred) *Query {
	items := make([]SelectItem, len(attrs))
	for i, a := range attrs {
		items[i] = SelectItem{Expr: &expr.Col{ID: a}}
	}
	return &Query{Table: table, Items: items, Where: where}
}

// Aggregation builds template (ii): select max(a), max(b), ... from R
// [where pred], one aggregate per attribute.
func Aggregation(table string, op expr.AggOp, attrs []data.AttrID, where expr.Pred) *Query {
	items := make([]SelectItem, len(attrs))
	for i, a := range attrs {
		items[i] = SelectItem{Agg: &expr.Agg{Op: op, Arg: &expr.Col{ID: a}}}
	}
	return &Query{Table: table, Items: items, Where: where}
}

// GroupedAggregation builds the grouped template:
// select k1, ..., op(a), op(b), ... from R [where pred] group by k1, ... —
// the group keys selected first, then one aggregate per attrs entry.
func GroupedAggregation(table string, op expr.AggOp, attrs []data.AttrID, keys []data.AttrID, where expr.Pred) *Query {
	gb := make([]expr.Col, len(keys))
	items := make([]SelectItem, 0, len(keys)+len(attrs))
	for i, k := range keys {
		gb[i] = expr.Col{ID: k}
		items = append(items, SelectItem{Expr: &expr.Col{ID: k}})
	}
	for _, a := range attrs {
		items = append(items, SelectItem{Agg: &expr.Agg{Op: op, Arg: &expr.Col{ID: a}}})
	}
	return &Query{Table: table, Items: items, Where: where, GroupBy: gb}
}

// ArithExpression builds template (iii): select a + b + ... from R
// [where pred].
func ArithExpression(table string, attrs []data.AttrID, where expr.Pred) *Query {
	return &Query{
		Table: table,
		Items: []SelectItem{{Expr: expr.SumCols(attrs)}},
		Where: where,
	}
}

// AggExpression builds the select-project-aggregate shape of §4.1:
// select sum(a + b + ...) from R [where pred]. Aggregating the expression
// keeps result cardinality at one row, as the paper does "to minimize the
// number of tuples returned".
func AggExpression(table string, attrs []data.AttrID, where expr.Pred) *Query {
	return &Query{
		Table: table,
		Items: []SelectItem{{Agg: &expr.Agg{Op: expr.AggSum, Arg: expr.SumCols(attrs)}}},
		Where: where,
	}
}

// JoinOn builds the equi-join clause joining table with leftKey (a
// combined-namespace id in the left input) equal to the joined table's
// attribute at position rightLocal; leftWidth is the width of the left
// input's attribute space, so the right key lands at leftWidth+rightLocal in
// the combined namespace. Key names follow the synthetic a0..aN convention
// (data.SyntheticSchema), which every test and benchmark schema uses.
func JoinOn(table string, leftKey data.AttrID, rightLocal, leftWidth int) Join {
	return Join{
		Table:    table,
		LeftKey:  expr.Col{ID: leftKey},
		RightKey: expr.Col{ID: leftWidth + rightLocal, Name: fmt.Sprintf("%s.a%d", table, rightLocal)},
	}
}

// PredLt builds the single-column predicate "attr < v".
func PredLt(attr data.AttrID, v data.Value) expr.Pred {
	return &expr.Cmp{Op: expr.Lt, L: &expr.Col{ID: attr}, R: &expr.Const{V: v}}
}

// PredGt builds the single-column predicate "attr > v".
func PredGt(attr data.AttrID, v data.Value) expr.Pred {
	return &expr.Cmp{Op: expr.Gt, L: &expr.Col{ID: attr}, R: &expr.Const{V: v}}
}

// ConjLtGt builds the two-predicate conjunction of the paper's running
// example Q1: "d < v1 and e > v2".
func ConjLtGt(dAttr data.AttrID, v1 data.Value, eAttr data.AttrID, v2 data.Value) expr.Pred {
	return &expr.And{Terms: []expr.Pred{PredLt(dAttr, v1), PredGt(eAttr, v2)}}
}

// RandomAttrs returns k distinct attribute ids drawn from [0, n) using the
// caller-supplied next function (e.g. rand.Intn). Results are sorted.
func RandomAttrs(n, k int, next func(int) int) []data.AttrID {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]data.AttrID, 0, k)
	for len(out) < k {
		a := next(n)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}
