package query

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
)

func TestTemplates(t *testing.T) {
	proj := Projection("R", []data.AttrID{2, 0}, nil)
	if len(proj.Items) != 2 || proj.HasAggregates() {
		t.Fatal("Projection shape wrong")
	}
	if !reflect.DeepEqual(proj.SelectAttrs(), []data.AttrID{0, 2}) {
		t.Fatalf("SelectAttrs = %v", proj.SelectAttrs())
	}
	if proj.WhereAttrs() != nil {
		t.Fatal("no where clause expected")
	}

	agg := Aggregation("R", expr.AggMax, []data.AttrID{1, 3}, PredLt(5, 10))
	if !agg.HasAggregates() || len(agg.Items) != 2 {
		t.Fatal("Aggregation shape wrong")
	}
	if !reflect.DeepEqual(agg.WhereAttrs(), []data.AttrID{5}) {
		t.Fatalf("WhereAttrs = %v", agg.WhereAttrs())
	}
	if !reflect.DeepEqual(agg.AllAttrs(), []data.AttrID{1, 3, 5}) {
		t.Fatalf("AllAttrs = %v", agg.AllAttrs())
	}

	ae := ArithExpression("R", []data.AttrID{0, 1, 2}, nil)
	if len(ae.Items) != 1 || ae.HasAggregates() {
		t.Fatal("ArithExpression shape wrong")
	}
	if !reflect.DeepEqual(ae.SelectAttrs(), []data.AttrID{0, 1, 2}) {
		t.Fatalf("SelectAttrs = %v", ae.SelectAttrs())
	}

	sae := AggExpression("R", []data.AttrID{0, 1}, nil)
	if !sae.HasAggregates() || len(sae.Items) != 1 {
		t.Fatal("AggExpression shape wrong")
	}
}

func TestQueryString(t *testing.T) {
	q := Aggregation("R", expr.AggMax, []data.AttrID{0}, ConjLtGt(3, 10, 4, 20))
	s := q.String()
	for _, want := range []string{"select", "max(a0)", "from R", "where", "a3 < 10", "a4 > 20"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestInfoPattern(t *testing.T) {
	q1 := Projection("R", []data.AttrID{1, 2}, PredGt(0, 5))
	q2 := Projection("R", []data.AttrID{2, 1}, PredGt(0, 99)) // same attrs, different constant
	i1, i2 := InfoOf(q1), InfoOf(q2)
	if i1.Pattern() != i2.Pattern() {
		t.Fatal("pattern should depend only on the attribute sets")
	}
	q3 := Projection("R", []data.AttrID{1, 2, 3}, PredGt(0, 5))
	if InfoOf(q3).Pattern() == i1.Pattern() {
		t.Fatal("different attribute sets must have different patterns")
	}
	// Select vs where must be distinguished (paper keeps two matrices).
	qa := Projection("R", []data.AttrID{1}, PredGt(2, 5))
	qb := Projection("R", []data.AttrID{2}, PredGt(1, 5))
	if InfoOf(qa).Pattern() == InfoOf(qb).Pattern() {
		t.Fatal("select/where roles must affect the pattern")
	}
	if !reflect.DeepEqual(i1.All(), []data.AttrID{0, 1, 2}) {
		t.Fatalf("All = %v", i1.All())
	}
}

func TestConjLtGt(t *testing.T) {
	p := ConjLtGt(0, 10, 1, 20)
	and, ok := p.(*expr.And)
	if !ok || len(and.Terms) != 2 {
		t.Fatal("ConjLtGt should build a 2-term conjunction")
	}
	get := func(a data.AttrID) data.Value { return []data.Value{5, 25}[a] }
	if !p.EvalBool(get) {
		t.Fatal("5<10 and 25>20 should hold")
	}
}

func TestRandomAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := RandomAttrs(10, 4, rng.Intn)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	prev := -1
	for _, a := range got {
		if a < 0 || a >= 10 || seen[a] || a <= prev {
			t.Fatalf("RandomAttrs not sorted/distinct/in-range: %v", got)
		}
		seen[a] = true
		prev = a
	}
	// k > n clamps to n.
	if got := RandomAttrs(3, 99, rng.Intn); len(got) != 3 {
		t.Fatalf("clamp failed: %v", got)
	}
}
