package h2o_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"h2o"
)

// TestQueryCtxEndToEnd drives the serving layer through the SQL facade:
// cache hit on repetition, invalidation on insert, correctness of the
// recomputed answer.
func TestQueryCtxEndToEnd(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 8), 2_000, 3)
	ctx := context.Background()

	const q = "select count(a0) from events"
	r1, i1, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if i1.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if r1.At(0, 0) != 2_000 {
		t.Fatalf("count = %d", r1.At(0, 0))
	}

	// Whitespace/case variants normalize to the same cache entry.
	_, i2, err := db.QueryCtx(ctx, "SELECT   count(a0)   FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if !i2.CacheHit {
		t.Fatal("normalized repeat missed the cache")
	}

	// Insert bumps the relation version; the cached count is stale and must
	// not be served.
	if _, _, err := db.QueryCtx(ctx, "insert into events values (1,2,3,4,5,6,7,8)"); err != nil {
		t.Fatal(err)
	}
	r3, i3, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if i3.CacheHit {
		t.Fatal("stale cached count served after insert")
	}
	if r3.At(0, 0) != 2_001 {
		t.Fatalf("post-insert count = %d, want 2001", r3.At(0, 0))
	}

	st := db.ServeStats()
	if st.CacheHits != 1 || st.Executed != 2 {
		t.Fatalf("serve stats = %+v", st)
	}
}

// TestQueryCtxCancellation: a canceled context is honored before admission.
func TestQueryCtxCancellation(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 4), 100, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.QueryCtx(ctx, "select max(a0) from events"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := db.QueryCtx(ctx, "insert into events values (1,2,3,4)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("insert err = %v, want context.Canceled", err)
	}
}

// TestDBConcurrentClients is the facade-level -race stress test: many
// clients mixing selects (through the serving layer) with inserts and
// catalog reads, across two tables.
func TestDBConcurrentClients(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 8), 2_000, 3)
	db.CreateTableFrom(h2o.SyntheticSchema("metrics", 6), 1_000, 4)
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, 10)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var src string
				switch (c + i) % 4 {
				case 0:
					src = fmt.Sprintf("select max(a%d), min(a%d) from events where a0 < %d", (c+i)%8, (c+i)%8, i*1000)
				case 1:
					src = fmt.Sprintf("select count(a0) from metrics where a1 > %d", -i*1000)
				case 2:
					src = "select sum(a1 + a2) from events"
				default:
					src = fmt.Sprintf("select a2, a3 from metrics where a0 < %d", -900_000_000+i)
				}
				if _, _, err := db.QueryCtx(ctx, src); err != nil {
					errCh <- fmt.Errorf("client %d query %d (%s): %w", c, i, src, err)
					return
				}
				if _, err := db.Version("events"); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				table, vals := "events", "(1,2,3,4,5,6,7,8)"
				if w == 1 {
					table, vals = "metrics", "(1,2,3,4,5,6)"
				}
				src := fmt.Sprintf("insert into %s values %s", table, vals)
				if _, _, err := db.QueryCtx(ctx, src); err != nil {
					errCh <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final consistency: counts reflect every insert.
	res, _, err := db.Query("select count(a0) from events")
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 0) != 2_020 {
		t.Fatalf("events count = %d, want 2020", res.At(0, 0))
	}
}

// TestCloseFencesQueryCtx: after Close, QueryCtx reports ErrClosed instead
// of silently resurrecting a serving layer, including when Close races the
// first QueryCtx.
func TestCloseFencesQueryCtx(t *testing.T) {
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 4), 200, 1)
	ctx := context.Background()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Must either succeed (before Close won) or fail with ErrClosed.
			if _, _, err := db.QueryCtx(ctx, "select max(a0) from R"); err != nil && !errors.Is(err, h2o.ErrClosed) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	db.Close()
	wg.Wait()

	if _, _, err := db.QueryCtx(ctx, "select max(a0) from R"); !errors.Is(err, h2o.ErrClosed) {
		t.Fatalf("QueryCtx after Close: err = %v, want ErrClosed", err)
	}
	// Inserts are fenced too: Close means no more QueryCtx traffic, reads
	// or writes.
	if _, _, err := db.QueryCtx(ctx, "insert into R values (1,2,3,4)"); !errors.Is(err, h2o.ErrClosed) {
		t.Fatalf("insert after Close: err = %v, want ErrClosed", err)
	}
	db.Close() // idempotent
}

// TestSaveTableDuringInserts: snapshots are taken under the engine's read
// lock, so saving while a writer appends must neither race (-race) nor
// produce a torn snapshot (SaveFile checksums the relation it wrote).
func TestSaveTableDuringInserts(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 4), 1_000, 1)
	dir := t.TempDir()

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, _, err := db.Query("insert into R values (1,2,3,4)"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.SaveTable("R", fmt.Sprintf("%s/s%d.snap", dir, i)); err != nil {
				errCh <- err
				return
			}
			if _, err := db.LayoutSignature("R"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every snapshot restores cleanly (checksums verify).
	for i := 0; i < 10; i++ {
		if _, err := db.LoadTable(fmt.Sprintf("%s/s%d.snap", dir, i)); err != nil {
			t.Fatalf("snapshot %d corrupt: %v", i, err)
		}
	}
}

// TestReplaceTableInvalidatesCache: re-registering a table (AddTable or
// LoadTable under the same name) must not let the serving layer answer
// from results cached against the replaced table — relation versions are
// process-unique, so the new engine's version can never collide with a
// cached key.
func TestReplaceTableInvalidatesCache(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 4), 1_000, 1)
	ctx := context.Background()

	const q = "select count(a0) from R"
	r1, _, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.At(0, 0) != 1_000 {
		t.Fatalf("count = %d", r1.At(0, 0))
	}

	// Replace R with a differently-sized table under the same name.
	db.AddTable(h2o.Generate(h2o.SyntheticSchema("R", 4), 250, 2))
	r2, i2, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if i2.CacheHit {
		t.Fatal("cache served a result computed against the replaced table")
	}
	if r2.At(0, 0) != 250 {
		t.Fatalf("post-replace count = %d, want 250", r2.At(0, 0))
	}

	// Same discipline for LoadTable: save the 250-row R, replace it with a
	// bigger one, cache a result, then restore the snapshot.
	path := t.TempDir() + "/r.snap"
	if err := db.SaveTable("R", path); err != nil {
		t.Fatal(err)
	}
	db.AddTable(h2o.Generate(h2o.SyntheticSchema("R", 4), 500, 3))
	if r, _, err := db.QueryCtx(ctx, q); err != nil || r.At(0, 0) != 500 {
		t.Fatalf("count=%v err=%v", r.At(0, 0), err)
	}
	if _, err := db.LoadTable(path); err != nil {
		t.Fatal(err)
	}
	r4, i4, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if i4.CacheHit {
		t.Fatal("cache served a result from before the snapshot restore")
	}
	if r4.At(0, 0) != 250 {
		t.Fatalf("post-restore count = %d, want 250", r4.At(0, 0))
	}
}

// TestServeExplicit exercises a caller-owned server instance.
func TestServeExplicit(t *testing.T) {
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 4), 500, 9)
	srv := db.Serve(h2o.ServerConfig{Workers: 2, CacheEntries: 8})
	defer srv.Close()

	q, err := db.Parse("select max(a1) from events")
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err := srv.Query(context.Background(), q); err != nil || info.CacheHit {
		t.Fatalf("first: err=%v hit=%v", err, info.CacheHit)
	}
	if _, info, err := srv.Query(context.Background(), q); err != nil || !info.CacheHit {
		t.Fatalf("second: err=%v hit=%v", err, info.CacheHit)
	}
}
