package h2o_test

import (
	"context"
	"fmt"
	"testing"

	"h2o"
)

// TestDeltaRepairFacade is the public-API acceptance test for
// partial-result reuse: on a table with several sealed segments, a repeated
// full-relation aggregate over a tail-append workload is answered by delta
// repair — only the changed tail segment is rescanned per append
// (ExecInfo.RepairedSegments == 1, not the relation's segment count), the
// serving stats count each repair, and every repaired result equals a cold
// full scan through the direct (cache-free) execution path.
func TestDeltaRepairFacade(t *testing.T) {
	const (
		segCap  = 1024
		sealed  = 5
		rows    = sealed*segCap + segCap/2 // 5 sealed segments + partial tail
		appends = 8
	)
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen // no adaptation: only appends mutate
	opts.SegmentCapacity = segCap
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.AddTable(h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), rows, 42))

	ctx := context.Background()
	const aggQ = "select sum(a1), count(a1), max(a2) from R"

	// Cold miss seeds the partials payload; nothing is repaired yet.
	if _, info, err := db.QueryCtx(ctx, aggQ); err != nil || info.CacheHit || info.RepairedSegments != 0 {
		t.Fatalf("seed: err=%v hit=%v repaired=%d", err, info.CacheHit, info.RepairedSegments)
	}

	for i := 0; i < appends; i++ {
		ins := fmt.Sprintf("insert into R values (%d, %d, %d, 7)", 90_000_000+i, i, -i)
		if _, _, err := db.QueryCtx(ctx, ins); err != nil {
			t.Fatal(err)
		}

		got, info, err := db.QueryCtx(ctx, aggQ)
		if err != nil {
			t.Fatal(err)
		}
		if info.CacheHit {
			t.Fatalf("append %d: stale cached aggregate served", i)
		}
		if info.RepairedSegments != 1 {
			t.Fatalf("append %d: RepairedSegments = %d, want 1 — repair must rescan the changed tail only, not the %d-segment relation",
				i, info.RepairedSegments, sealed+1)
		}
		// The repaired answer must be indistinguishable from recomputing
		// from scratch: db.Query bypasses the serving layer entirely.
		want, _, err := db.Query(aggQ)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("append %d: repaired %v, cold full scan %v", i, got.Data, want.Data)
		}
	}

	st := db.ServeStats()
	if st.Repaired != appends {
		t.Fatalf("ServerStats.Repaired = %d, want %d (stats %+v)", st.Repaired, appends, st)
	}
	if st.RepairedSegments != appends {
		t.Fatalf("ServerStats.RepairedSegments = %d, want %d — one tail rescan per append (stats %+v)",
			st.RepairedSegments, appends, st)
	}
}

// TestGroupedDeltaRepairFacade is the public-API acceptance test for GROUP
// BY with delta repair: a grouped aggregate parsed from SQL rides the same
// serving tiers as scalar aggregates — per-append repairs rescan only the
// changed tail segment, the repaired group rows (one per key, ascending)
// equal a cache-free full scan, and the serving stats record the repairs.
func TestGroupedDeltaRepairFacade(t *testing.T) {
	const (
		segCap  = 1024
		sealed  = 4
		rows    = sealed*segCap + segCap/3
		appends = 6
	)
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen
	opts.SegmentCapacity = segCap
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.AddTable(h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), rows, 7))

	ctx := context.Background()
	const groupQ = "select a3, sum(a1), count(a2) from R group by a3"

	if _, info, err := db.QueryCtx(ctx, groupQ); err != nil || info.CacheHit || info.RepairedSegments != 0 {
		t.Fatalf("seed: err=%v hit=%v repaired=%d", err, info.CacheHit, info.RepairedSegments)
	}

	for i := 0; i < appends; i++ {
		// Alternate between a recycled key (extends a group the repairs
		// created) and a fresh one (adds a group the cached payload has
		// never seen).
		ins := fmt.Sprintf("insert into R values (%d, %d, %d, %d)", 90_000_000+i, i+1, -i, i%2)
		if _, _, err := db.QueryCtx(ctx, ins); err != nil {
			t.Fatal(err)
		}

		got, info, err := db.QueryCtx(ctx, groupQ)
		if err != nil {
			t.Fatal(err)
		}
		if info.CacheHit {
			t.Fatalf("append %d: stale cached groups served", i)
		}
		if info.RepairedSegments != 1 {
			t.Fatalf("append %d: RepairedSegments = %d, want 1 — grouped repair must rescan the changed tail only",
				i, info.RepairedSegments)
		}
		want, _, err := db.Query(groupQ) // bypasses the serving layer: cache-free
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows < 2 {
			t.Fatalf("append %d: grouped result has %d rows, want several groups", i, got.Rows)
		}
		if !got.Equal(want) {
			t.Fatalf("append %d: repaired groups %v, cold full scan %v", i, got.Data, want.Data)
		}
	}

	st := db.ServeStats()
	if st.Repaired != appends {
		t.Fatalf("ServerStats.Repaired = %d, want %d (stats %+v)", st.Repaired, appends, st)
	}
	if st.RepairedSegments != appends {
		t.Fatalf("ServerStats.RepairedSegments = %d, want %d (stats %+v)", st.RepairedSegments, appends, st)
	}
}

// TestPartialCacheDisabled: a negative Options.PartialCacheBytes switches
// delta repair off at the facade level; the workload still answers
// correctly through full executions.
func TestPartialCacheDisabled(t *testing.T) {
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen
	opts.SegmentCapacity = 256
	opts.PartialCacheBytes = -1
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.AddTable(h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), 1024, 1))

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := db.QueryCtx(ctx, "insert into R values (1000000, 1, 2, 3)"); err != nil {
			t.Fatal(err)
		}
		res, info, err := db.QueryCtx(ctx, "select count(a0) from R")
		if err != nil {
			t.Fatal(err)
		}
		if info.RepairedSegments != 0 {
			t.Fatalf("repair ran with partial caching disabled: %+v", info)
		}
		if want := int64(1024 + i + 1); res.At(0, 0) != want {
			t.Fatalf("count = %d, want %d", res.At(0, 0), want)
		}
	}
	if st := db.ServeStats(); st.Repaired != 0 {
		t.Fatalf("Repaired = %d with partial caching disabled", st.Repaired)
	}
}
