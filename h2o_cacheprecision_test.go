package h2o_test

import (
	"context"
	"testing"

	"h2o"
)

// TestSegmentPreciseInvalidationFacade is the public-API acceptance test
// for segment-precise result caching: on a table with several sealed
// segments of append-ordered data, a cached query over cold segments
// survives a run of consecutive tail appends — every repetition is a cache
// hit — while a full-scan query is invalidated by each append. Before the
// cache was keyed on per-query touch fingerprints, every append stranded
// *all* cached results for the table.
func TestSegmentPreciseInvalidationFacade(t *testing.T) {
	const (
		segCap  = 1024
		sealed  = 5
		rows    = sealed*segCap + segCap/2 // 5 sealed segments + partial tail
		appends = 8
	)
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen // no adaptation: only appends mutate
	opts.SegmentCapacity = segCap
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.AddTable(h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), rows, 42))

	ctx := context.Background()
	// a0 == row position, so "a0 < 1024" zone-map-prunes everything but
	// segment 0; the appended rows carry huge a0 values and never match.
	const coldQ = "select sum(a1) from R where a0 < 1024"
	const fullQ = "select count(a0) from R"

	versions, err := db.SegmentVersions("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != sealed+1 {
		t.Fatalf("segments = %d, want %d sealed + 1 tail", len(versions), sealed+1)
	}

	coldRes, info, err := db.QueryCtx(ctx, coldQ)
	if err != nil || info.CacheHit {
		t.Fatalf("first cold query: err=%v hit=%v", err, info.CacheHit)
	}
	if len(info.SegmentsTouched) != 1 || info.SegmentsTouched[0] != 0 {
		t.Fatalf("cold query touched segments %v, want [0]", info.SegmentsTouched)
	}
	if _, _, err := db.QueryCtx(ctx, fullQ); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < appends; i++ {
		if _, _, err := db.QueryCtx(ctx, "insert into R values (90000000, 7, 7, 7)"); err != nil {
			t.Fatal(err)
		}

		// Only the tail's version may have moved.
		after, err := db.SegmentVersions("R")
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < sealed; si++ {
			if after[si] != versions[si] {
				t.Fatalf("append %d: sealed segment %d version moved %d -> %d", i, si, versions[si], after[si])
			}
		}
		versions = after

		got, infoC, err := db.QueryCtx(ctx, coldQ)
		if err != nil {
			t.Fatal(err)
		}
		if !infoC.CacheHit {
			t.Fatalf("append %d: cold-segment query was invalidated by a tail append", i)
		}
		if !got.Equal(coldRes) {
			t.Fatalf("append %d: cold-segment result changed across appends", i)
		}

		resF, infoF, err := db.QueryCtx(ctx, fullQ)
		if err != nil {
			t.Fatal(err)
		}
		if infoF.CacheHit {
			t.Fatalf("append %d: full scan served a stale cached count", i)
		}
		if want := int64(rows + i + 1); resF.At(0, 0) != want {
			t.Fatalf("append %d: count = %d, want %d", i, resF.At(0, 0), want)
		}
	}

	st := db.ServeStats()
	// Cold query: 1 miss then 8 hits. Full scan: 9 misses (1 + one per
	// append).
	if st.CacheHits != appends {
		t.Fatalf("CacheHits = %d, want %d (stats %+v)", st.CacheHits, appends, st)
	}
	if st.CacheMisses != appends+2 {
		t.Fatalf("CacheMisses = %d, want %d (stats %+v)", st.CacheMisses, appends+2, st)
	}
}
