package h2o_test

import (
	"context"
	"fmt"

	"h2o"
)

// ExampleNewDB is the quickstart: create a catalog, register a table with
// deterministic synthetic data, and run SQL against it.
func ExampleNewDB() {
	schema, err := h2o.NewSchema("events", []string{"ts", "src", "dst", "bytes"})
	if err != nil {
		panic(err)
	}
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(schema, 1000, 42) // 1000 rows, seeded

	res, _, err := db.Query("select count(ts) from events")
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", res.At(0, 0))
	// Output:
	// rows: 1000
}

// ExampleDB_QueryCtx routes queries through the serving layer: the second
// identical query is answered from the segment-precise result cache.
func ExampleDB_QueryCtx() {
	schema, err := h2o.NewSchema("events", []string{"ts", "src", "dst", "bytes"})
	if err != nil {
		panic(err)
	}
	db := h2o.NewDB()
	defer db.Close()
	db.CreateTableFrom(schema, 1000, 42)
	ctx := context.Background()

	_, first, err := db.QueryCtx(ctx, "select max(bytes) from events where src < 0")
	if err != nil {
		panic(err)
	}
	_, second, err := db.QueryCtx(ctx, "select max(bytes) from events where src < 0")
	if err != nil {
		panic(err)
	}
	fmt.Println("first from cache:", first.CacheHit)
	fmt.Println("second from cache:", second.CacheHit)
	// Output:
	// first from cache: false
	// second from cache: true
}

// ExampleDB_Serve sizes the serving layer explicitly and shows delta
// repair: after a tail append invalidates the cached aggregate, the repeat
// query rescans only the one changed segment and re-combines it with the
// cached per-segment partials of the other four.
func ExampleDB_Serve() {
	schema, err := h2o.NewSchema("events", []string{"ts", "src", "dst", "bytes"})
	if err != nil {
		panic(err)
	}
	opts := h2o.DefaultOptions()
	opts.SegmentCapacity = 256 // small segments so the example has several
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.CreateTableFrom(schema, 1024, 42) // exactly 4 sealed segments

	srv := db.Serve(h2o.ServerConfig{Workers: 2})
	defer srv.Close()
	ctx := context.Background()

	q, err := db.Parse("select count(ts), sum(bytes) from events")
	if err != nil {
		panic(err)
	}
	if _, _, err := srv.Query(ctx, q); err != nil { // seeds per-segment partials
		panic(err)
	}
	if _, _, err := db.Query("insert into events values (99, 1, 2, 50)"); err != nil {
		panic(err)
	}
	res, info, err := srv.Query(ctx, q)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows now:", res.At(0, 0))
	fmt.Println("segments rescanned by repair:", info.RepairedSegments)
	// Output:
	// rows now: 1025
	// segments rescanned by repair: 1
}
