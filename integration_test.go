package h2o_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"h2o"
	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

// TestIntegrationLifecycle drives the whole stack through one lifetime:
// SQL over a fresh table, adaptation under a hot pattern, snapshot, restore
// into a new process-equivalent DB, and identical answers afterwards.
func TestIntegrationLifecycle(t *testing.T) {
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("metrics", 24), 30_000, 2024)

	probes := []string{
		"select count(a0) from metrics",
		"select max(a3), min(a7), avg(a11) from metrics where a2 > 0",
		"select a1, a2 from metrics where a0 between -50000000 and 50000000 limit 10",
		"select sum(a4 + a8 + a12 + a16) from metrics where a4 < 0",
	}
	before := make([]*h2o.Result, len(probes))
	for i, src := range probes {
		res, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		before[i] = res
	}

	// Heat up one pattern until the engine reorganizes.
	hot := "select sum(a4 + a8 + a12 + a16) from metrics where a4 < 0"
	for i := 0; i < 40; i++ {
		if _, _, err := db.Query(hot); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := db.Engine("metrics")
	if e.Stats().GroupsCreated == 0 {
		t.Fatal("engine never adapted under the hot pattern")
	}

	// Snapshot the adapted store, restore it elsewhere.
	path := filepath.Join(t.TempDir(), "metrics.h2o")
	if err := db.SaveTable("metrics", path); err != nil {
		t.Fatal(err)
	}
	db2 := h2o.NewDB()
	if _, err := db2.LoadTable(path); err != nil {
		t.Fatal(err)
	}
	for i, src := range probes {
		res, _, err := db2.Query(src)
		if err != nil {
			t.Fatalf("restored %s: %v", src, err)
		}
		if !res.Equal(before[i]) {
			t.Fatalf("restored DB answers %q differently", src)
		}
	}
}

// TestIntegrationTraceReplay replays a generated workload trace through the
// SQL front end — the h2ogen ▸ h2oshell pipeline — and cross-checks every
// result against the static row-store engine.
func TestIntegrationTraceReplay(t *testing.T) {
	const nAttrs, rows = 40, 10_000
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), rows, 5)

	db := h2o.NewDB()
	db.AddTable(tb)
	oracle := core.NewRowStore(tb, false)

	qs := workload.AdaptiveSequence("R", nAttrs, rows, 50, 5, 15, 5)
	for i, q := range qs {
		// Round-trip through SQL text, as a replayed trace file would.
		res, _, err := db.Query(q.String())
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		want, _, err := oracle.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(want) {
			t.Fatalf("query %d (%s): replayed result differs from oracle", i, q)
		}
	}
}

// TestIntegrationConcurrentSQL hammers one table from several goroutines
// through the public API; run with -race.
func TestIntegrationConcurrentSQL(t *testing.T) {
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("t", 16), 8_000, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 15; i++ {
				a := rng.Intn(16)
				b := rng.Intn(16)
				src := fmt.Sprintf("select max(a%d), sum(a%d) from t where a%d > 0", a, b, (a+1)%16)
				if _, _, err := db.Query(src); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIntegrationAllStrategiesOnEvolvedLayout verifies that after the engine
// has evolved a hybrid layout, every executable strategy still produces the
// same answers on it — the invariant that makes cost-based strategy choice
// safe.
func TestIntegrationAllStrategiesOnEvolvedLayout(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 20), 15_000, 9)
	opts := core.DefaultOptions()
	opts.Window.InitialSize = 6
	e := core.NewH2O(tb, opts)
	hotAttrs := []data.AttrID{2, 6, 10, 14}
	for i := 0; i < 30; i++ {
		q := query.AggExpression("R", hotAttrs, query.PredLt(2, int64(i)*1e6))
		if _, _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	rel := e.Relation()
	if rel.Kind() != storage.KindGroup {
		t.Skip("layout did not evolve at this scale")
	}
	probe := query.Aggregation("R", expr.AggMax, hotAttrs, query.PredGt(6, 0))
	want, err := exec.Exec(rel, probe, exec.ExecOpts{Strategy: exec.StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := exec.Exec(rel, probe, exec.ExecOpts{Strategy: exec.StrategyColumn}); err != nil || !got.Equal(want) {
		t.Fatalf("column strategy on evolved layout: %v", err)
	}
	if got, err := exec.Exec(rel, probe, exec.ExecOpts{Strategy: exec.StrategyHybrid}); err != nil || !got.Equal(want) {
		t.Fatalf("hybrid strategy on evolved layout: %v", err)
	}
	if got, err := exec.Exec(rel, probe, exec.ExecOpts{Strategy: exec.StrategyVectorized}); err != nil || !got.Equal(want) {
		t.Fatalf("vectorized strategy on evolved layout: %v", err)
	}
}
