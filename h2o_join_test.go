package h2o_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"h2o"
)

// joinTables registers the standard join fixture: R is append-ordered
// time-series data (a0 == row position, so R-side range predicates
// zone-map-prune), S is a smaller dimension-style table whose a0 holds the
// row index 0..rows-1, so "R join S on a0 = S.a0" matches exactly S's rows
// against R's prefix.
func joinTables(db *h2o.DB, rRows, sRows int) (rTab, sTab *h2o.Table) {
	rTab = h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), rRows, 42)
	sTab = h2o.Generate(h2o.SyntheticSchema("S", 3), sRows, 7)
	for r := 0; r < sRows; r++ {
		sTab.Cols[0][r] = int64(r)
	}
	db.AddTable(rTab)
	db.AddTable(sTab)
	return rTab, sTab
}

// TestJoinFacadeEndToEnd drives a two-table join through the SQL facade and
// checks the answer against hand-computed values.
func TestJoinFacadeEndToEnd(t *testing.T) {
	db := h2o.NewDB()
	defer db.Close()
	_, sTab := joinTables(db, 2_000, 600)

	var wantSum int64
	for r := 0; r < 600; r++ {
		wantSum += sTab.Cols[2][r]
	}
	res, info, err := db.Query("select count(a0), sum(S.a2) from R join S on a0 = S.a0")
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Strategy.String(); got != "hash-join" {
		t.Fatalf("strategy = %q, want hash-join", got)
	}
	if res.At(0, 0) != 600 || res.At(0, 1) != wantSum {
		t.Fatalf("count, sum = %d, %d; want 600, %d", res.At(0, 0), res.At(0, 1), wantSum)
	}

	// Grouped joined aggregate with a key from each side, predicate on the
	// left side only.
	res, _, err = db.Query("select count(a0) from R join S on a0 = S.a0 where a0 < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 0) != 100 {
		t.Fatalf("filtered join count = %d, want 100", res.At(0, 0))
	}
}

// TestJoinInvalidationFacade is the join counterpart of the segment-precise
// invalidation acceptance test: a cached join result survives appends to
// segments outside its candidate sets (the probe-pruned R tail), while an
// append to *either* input's candidate set — including the un-predicated S
// side — invalidates it. Joins are cached whole and never delta-repaired,
// so a miss means full recomputation, observable through ServeStats.
func TestJoinInvalidationFacade(t *testing.T) {
	const (
		segCap  = 1024
		rRows   = 5*segCap + segCap/2
		sRows   = 600
		appends = 6
	)
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen // no adaptation: only appends mutate
	opts.SegmentCapacity = segCap
	db := h2o.NewDBWith(opts)
	defer db.Close()
	joinTables(db, rRows, sRows)
	ctx := context.Background()

	// R-side predicate prunes R's candidates to segment 0; every appended R
	// row carries a huge a0 and lands in later segments, far outside it. S
	// has no predicate, so all of S is always a candidate.
	const joinQ = "select count(a0), sum(S.a2) from R join S on a0 = S.a0 where a0 < 1024"
	const fullQ = "select count(a0) from R join S on a0 = S.a0"

	first, info, err := db.QueryCtx(ctx, joinQ)
	if err != nil || info.CacheHit {
		t.Fatalf("first join query: err=%v hit=%v", err, info.CacheHit)
	}
	if first.At(0, 0) != sRows {
		t.Fatalf("join count = %d, want %d", first.At(0, 0), sRows)
	}
	if _, _, err := db.QueryCtx(ctx, fullQ); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < appends; i++ {
		if _, _, err := db.QueryCtx(ctx, "insert into R values (90000000, 7, 7, 7)"); err != nil {
			t.Fatal(err)
		}
		// The append touched only R's tail — not a candidate of either side
		// of joinQ — so the cached join result is still provably fresh.
		got, infoC, err := db.QueryCtx(ctx, joinQ)
		if err != nil {
			t.Fatal(err)
		}
		if !infoC.CacheHit {
			t.Fatalf("append %d to R's tail invalidated a join pruned away from the tail", i)
		}
		if !got.Equal(first) {
			t.Fatalf("append %d: cached join result changed", i)
		}
		// The unpredicated join reads R's tail, so each R append misses.
		if _, infoF, err := db.QueryCtx(ctx, fullQ); err != nil {
			t.Fatal(err)
		} else if infoF.CacheHit {
			t.Fatalf("append %d: full join served stale from cache", i)
		}
	}

	// An append to S — the other input — must invalidate, even though the
	// new row matches nothing: S's candidate set moved.
	if _, _, err := db.QueryCtx(ctx, "insert into S values (90000000, 1, 1)"); err != nil {
		t.Fatal(err)
	}
	got, infoS, err := db.QueryCtx(ctx, joinQ)
	if err != nil {
		t.Fatal(err)
	}
	if infoS.CacheHit {
		t.Fatal("append to S served a stale cached join")
	}
	if !got.Equal(first) {
		t.Fatal("recomputed join result changed after a non-matching S append")
	}
	if _, infoS2, err := db.QueryCtx(ctx, joinQ); err != nil || !infoS2.CacheHit {
		t.Fatalf("repeat after S append: err=%v hit=%v", err, infoS2.CacheHit)
	}

	// One more R tail append: hits resume.
	if _, _, err := db.QueryCtx(ctx, "insert into R values (90000001, 7, 7, 7)"); err != nil {
		t.Fatal(err)
	}
	if _, infoR, err := db.QueryCtx(ctx, joinQ); err != nil || !infoR.CacheHit {
		t.Fatalf("after final R append: err=%v hit=%v", err, infoR.CacheHit)
	}

	st := db.ServeStats()
	// joinQ: 1 miss, then appends hits, 1 S miss, 1 hit, 1 final hit.
	// fullQ: 1 miss + one per R append.
	wantHits := uint64(appends + 2)
	wantMisses := uint64(appends + 3)
	if st.CacheHits != wantHits || st.CacheMisses != wantMisses {
		t.Fatalf("hits, misses = %d, %d; want %d, %d (stats %+v)",
			st.CacheHits, st.CacheMisses, wantHits, wantMisses, st)
	}
}

// TestJoinShardedTableError: a join referencing a sharded table must fail
// with a descriptive error — through both the serving path and direct
// fingerprinting — never panic.
func TestJoinShardedTableError(t *testing.T) {
	opts := h2o.DefaultOptions()
	opts.Shards = 4
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 4), 1_000, 1)
	db.CreateTableFrom(h2o.SyntheticSchema("S", 3), 500, 2)

	const src = "select sum(a1) from R join S on a0 = S.a0"
	_, _, err := db.Query(src)
	if err == nil {
		t.Fatal("join over sharded tables succeeded; want a descriptive error")
	}
	if !strings.Contains(err.Error(), "do not support joins") {
		t.Fatalf("err = %v, want mention of join-over-sharded-tables", err)
	}

	q, err := db.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fingerprint(q); err == nil || !strings.Contains(err.Error(), "do not support joins") {
		t.Fatalf("Fingerprint err = %v, want mention of join-over-sharded-tables", err)
	}
}

// TestJoinConcurrentStress is the -race stress mix: joined reads (plain,
// filtered, grouped, self-join) race appends to both tables, adaptive
// reorganizations, and budget-driven evictions on both inputs.
func TestJoinConcurrentStress(t *testing.T) {
	opts := h2o.DefaultOptions()
	opts.SegmentCapacity = 256
	opts.MemoryBudgetBytes = 64 << 10 // tight budget: evictions churn residency
	db := h2o.NewDBWith(opts)
	defer db.Close()
	rTab := h2o.GenerateTimeSeries(h2o.SyntheticSchema("R", 4), 2_000, 42)
	sTab := h2o.GenerateTimeSeries(h2o.SyntheticSchema("S", 3), 1_000, 7)
	db.AddTable(rTab)
	db.AddTable(sTab)
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var src string
				switch (c + i) % 5 {
				case 0:
					src = "select count(a0), sum(S.a1) from R join S on a0 = S.a0"
				case 1:
					src = fmt.Sprintf("select sum(a1) from R join S on a0 = S.a0 where a0 < %d", 200+i*50)
				case 2:
					src = "select a3, count(S.a2) from R join S on a0 = S.a0 group by a3"
				case 3:
					src = "select count(a0) from R join R on a0 = R.a0"
				default:
					// Single-relation traffic keeps the adaptive advisor
					// reorganizing segments underneath the joins.
					src = fmt.Sprintf("select max(a%d) from R where a0 > %d", (c+i)%4, i*30)
				}
				if _, _, err := db.QueryCtx(ctx, src); err != nil {
					errCh <- fmt.Errorf("client %d query %d (%s): %w", c, i, src, err)
					return
				}
			}
		}(c)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				table, vals := "R", "(90000000, 2, 3, 4)"
				if w == 1 {
					table, vals = "S", "(90000000, 2, 3)"
				}
				if _, _, err := db.QueryCtx(ctx, fmt.Sprintf("insert into %s values %s", table, vals)); err != nil {
					errCh <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // evictor: force both engines over budget repeatedly
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, table := range []string{"R", "S"} {
				eng, err := db.Engine(table)
				if err != nil {
					errCh <- err
					return
				}
				eng.EnforceBudget()
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final consistency: every S row with a0 == row index still matches R
	// (writer keys 90000000 match on both sides too, pairing every appended
	// R row with every appended S row).
	res, _, err := db.Query("select count(a0) from R join S on a0 = S.a0")
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 0) <= 0 {
		t.Fatalf("final join count = %d, want positive", res.At(0, 0))
	}
}
